// Resilient SpMV driver (the recovery layer over the fault model).
//
// The paper's evaluation already meets real failure modes — HYB/BCCOO
// report Ø (OOM) on several matrices (Table III) — and production SpMV
// serving must additionally survive transient launch faults, ECC events,
// and whole-device loss without aborting the workload. ResilientEngine
// wraps any factory engine with the standard recovery ladder:
//
//   TransientFault   bounded retry with exponential backoff, the backoff
//                    charged to the simulated clock (timeline entries)
//   DataCorruption   re-upload scrub: the engine is rebuilt from host
//                    data, refreshing every device-resident buffer
//   DeviceOom        format fallback: walk a degradation chain
//                    (ACSR -> CSR-vector -> CSR-scalar; padded formats
//                    -> CSR-scalar), so the paper's Ø entries become a
//                    degraded-mode result instead of a bench abort. The
//                    terminal rung is the out-of-core streaming tier
//                    ("ooc-csr", src/core/ooc_engine.hpp): when even the
//                    raw CSR arrays don't fit, the matrix streams from
//                    the simulated storage plane in budget-sized slabs
//                    and the solve completes instead of throwing
//   DeviceLost       failover: rebuild the active format on the next
//                    surviving device of the provided set
//
// Every fault and every recovery action is recorded on a StreamTimeline
// ("fault:..." / "recovery:..." tags), so tests and benches can assert
// the exact sequence of events. With ACSR_FAULTS unset none of this code
// runs differently from a plain factory engine: the injector hooks are a
// single never-taken branch (see src/vgpu/fault.hpp) and the wrapper adds
// one virtual hop per SpMV.
//
// Silent (undetected) corruption is, by definition, invisible at this
// layer; the checkpointed solvers (src/apps/checkpoint.hpp) add the
// application-level residual/mass guards that catch it. docs/RESILIENCE.md
// has the full protocol.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/factory.hpp"
#include "prof/prof.hpp"
#include "slo/trace.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/timeline.hpp"

namespace acsr::core {

struct RetryPolicy {
  int max_retries = 3;          // per simulate / per build
  double backoff_s = 1.0e-4;    // first retry's wait, charged to the clock
  double backoff_growth = 2.0;  // exponential
};

struct ResilienceOptions {
  RetryPolicy retry;
  /// Re-upload scrubs allowed per simulate before the corruption is
  /// reported to the caller.
  int max_scrubs = 2;
  /// Override the format degradation chain (first entry is the preferred
  /// format). Empty = default_fallback_chain(preferred).
  std::vector<std::string> fallback_chain;
};

/// The default degradation chain for a format: ACSR degrades through the
/// CSR kernels it was built from; padded/preprocessed formats (the Ø rows
/// of Table III) degrade straight to CSR-scalar, which allocates no more
/// than the raw CSR arrays. Every chain ends at the out-of-core streaming
/// tier, whose resident footprint is two budget-sized slabs — the rung
/// that still works when the matrix itself doesn't fit.
inline std::vector<std::string> default_fallback_chain(
    const std::string& preferred) {
  if (preferred == "ooc-csr") return {preferred};
  if (preferred == "acsr" || preferred == "acsr-binning")
    return {preferred, "csr-vector", "csr-scalar", "ooc-csr"};
  if (preferred == "csr-scalar") return {preferred, "ooc-csr"};
  return {preferred, "csr-scalar", "ooc-csr"};
}

template <class T>
class ResilientEngine final : public spmv::SpmvEngine<T> {
 public:
  /// `devices[0]` is the primary; the rest are standbys used, in order,
  /// after whole-device loss. The engine is built on construction and the
  /// same recovery ladder applies to construction-time faults (BCCOO's
  /// auto-tuner launches trial kernels; every format uploads buffers).
  ResilientEngine(std::vector<vgpu::Device*> devices, const mat::Csr<T>& a,
                  const std::string& preferred, EngineConfig cfg = {},
                  ResilienceOptions opt = {})
      : host_(a),
        cfg_(cfg),
        opt_(std::move(opt)),
        devices_(std::move(devices)) {
    ACSR_REQUIRE(!devices_.empty(), "ResilientEngine needs >= 1 device");
    if (opt_.fallback_chain.empty())
      opt_.fallback_chain = default_fallback_chain(preferred);
    stream_ = timeline_.create_stream();
    rebuild("initial build");
  }

  // --- SpmvEngine interface ------------------------------------------------
  const std::string& name() const override { return inner_->name(); }
  vgpu::Device& device() override { return inner_->device(); }
  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }
  const spmv::EngineReport& report() const override {
    return inner_->report();
  }

  /// Host functional path: pure host arithmetic, no device involvement,
  /// hence no fault exposure.
  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    inner_->apply(x, y);
  }

  /// One SpMV through the device path, recovered per the ladder above.
  /// Returns the successful attempt's simulated seconds plus any backoff
  /// charged while recovering.
  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    return recovered([&] { return inner_->simulate(x, y); });
  }

  void apply_batch(const mat::DenseBlock<T>& x_block,
                   mat::DenseBlock<T>& y_block) const override {
    inner_->apply_batch(x_block, y_block);
  }

  /// Batched SpMM through the same recovery ladder: a fault mid-batch
  /// retries/rebuilds and re-runs the whole block (the block kernels
  /// overwrite or clear-then-accumulate every output slot, so a re-run is
  /// idempotent). After a fallback the degraded format serves the batch
  /// via its own simulate_batch — at worst the column loop.
  double simulate_batch(const mat::DenseBlock<T>& x_block,
                        mat::DenseBlock<T>& y_block) override {
    return recovered([&] { return inner_->simulate_batch(x_block, y_block); });
  }

  // --- recovery observability ----------------------------------------------
  /// Format currently serving SpMVs (the chain entry recovery settled on).
  const std::string& active_format() const {
    return opt_.fallback_chain[chain_pos_];
  }
  vgpu::Device& active_device() const { return *devices_[device_pos_]; }
  /// The engine instance currently serving (the active chain rung). The
  /// reference is invalidated by any recovery rebuild — read, don't keep.
  spmv::SpmvEngine<T>& active_engine() { return *inner_; }
  int retries() const { return retries_; }
  int scrubs() const { return scrubs_; }
  int fallbacks() const { return fallbacks_; }
  int failovers() const { return failovers_; }

  /// Every "fault:..." / "recovery:..." mark in order, as plain strings —
  /// the typed evidence trail callers assert on without walking the
  /// timeline log (which interleaves backoff/checkpoint entries).
  const std::vector<std::string>& recovery_log() const {
    return recovery_log_;
  }

  /// Every fault and recovery action, in order, as timeline entries
  /// ("fault:...", "recovery:...", plus solver "checkpoint..."/"restart..."
  /// marks added via note_event).
  const vgpu::StreamTimeline& timeline() const { return timeline_; }
  /// Record an application-level event (checkpoint, restart) alongside the
  /// driver's own fault/recovery marks. `duration_s` is charged to the
  /// simulated clock.
  void note_event(const std::string& tag, double duration_s = 0.0) {
    timeline_.enqueue(stream_, duration_s, tag);
  }

  /// Rebuild the active format's device state from host data (the
  /// re-upload scrub). Public so solvers can scrub when an application
  /// guard — not the hardware — detects corruption.
  void scrub() {
    ++scrubs_;
    rebuild("scrub");
  }

 private:
  /// The recovery ladder around one device-path attempt (shared by the
  /// scalar and batched entry points). Returns the successful attempt's
  /// simulated seconds plus any backoff charged while recovering.
  template <class Fn>
  double recovered(Fn&& attempt) {
    int retries_left = opt_.retry.max_retries;
    int scrubs_left = opt_.max_scrubs;
    double backoff = opt_.retry.backoff_s;
    double penalty_s = 0.0;
    for (;;) {
      try {
        return attempt() + penalty_s;
      } catch (const vgpu::TransientFault& e) {
        if (retries_left-- == 0) throw;
        note("fault:transient " + where_of(e));
        penalty_s += backoff;
        timeline_.enqueue(stream_, backoff,
                          "recovery:retry backoff " + where_of(e));
        if (prof::profiler_enabled()) [[unlikely]]
          prof::Profiler::instance().add_retry_backoff(backoff, where_of(e));
        // The recovery timeline has no absolute clock, so the span plane
        // charges the backoff duration onto the open execution span's
        // cursor (docs/SLO.md) — same seconds, trace-time placement.
        if (slo::slo_enabled()) [[unlikely]]
          slo::Tracer::instance().charge(
              slo::SpanKind::kRetryBackoff,
              "recovery:retry backoff " + where_of(e), "recovery", backoff);
        ++retries_;
        backoff *= opt_.retry.backoff_growth;
      } catch (const vgpu::DataCorruption& e) {
        if (scrubs_left-- == 0) throw;
        note("fault:corruption " + where_of(e));
        scrub_and_note();
      } catch (const acsr::InvariantError&) {
        // A silently flipped index sends a kernel out of bounds. Only
        // convert the abort into a scrub when the injector actually
        // recorded a flip since the device copies were last refreshed —
        // a genuine engine bug must stay loud.
        if (!flips_since_scrub() || scrubs_left-- == 0) throw;
        note("fault:corruption (bounds failure after undetected flip)");
        scrub_and_note();
      } catch (const vgpu::DeviceOom& e) {
        note(std::string("fault:oom ") + e.what());
        fall_back_or_rethrow();  // noreturn on exhausted chain
      } catch (const vgpu::DeviceLost& e) {
        note("fault:lost " + where_of(e));
        fail_over_or_rethrow();
      }
    }
  }

  static std::string where_of(const vgpu::DeviceFault& e) {
    return "'" + e.where() + "' on device '" + e.device() + "'";
  }

  void note(const std::string& tag) {
    timeline_.enqueue(stream_, 0.0, tag);
    recovery_log_.push_back(tag);
    // Mirror fault/recovery marks into the trace as instant events.
    if (prof::profiler_enabled()) [[unlikely]]
      prof::Profiler::instance().instant(tag);
  }

  void scrub_and_note() {
    ++scrubs_;
    rebuild("scrub");
    note("recovery:scrub re-uploaded " + active_format() + " from host");
  }

  /// The one place the degradation chain advances (shared by the simulate
  /// ladder and the build ladder): rethrows the in-flight exception when
  /// the chain is exhausted, otherwise steps to the next rung and logs it.
  /// Callers decide whether a rebuild follows (the build ladder is already
  /// inside its retry loop; the simulate ladder rebuilds explicitly).
  void advance_chain_or_rethrow() {
    if (chain_pos_ + 1 >= opt_.fallback_chain.size()) throw;
    ++chain_pos_;
    ++fallbacks_;
    note("recovery:fallback to " + active_format());
  }

  void fall_back_or_rethrow() {
    advance_chain_or_rethrow();
    rebuild("fallback");
  }

  void fail_over_or_rethrow() {
    std::size_t next = device_pos_ + 1;
    while (next < devices_.size() && devices_[next]->lost()) ++next;
    if (next >= devices_.size()) throw;
    device_pos_ = next;
    ++failovers_;
    rebuild("failover");
    note("recovery:failover to device '" +
         active_device().spec().name + "'");
  }

  /// Count of ECC / transfer bit-flip events the injector has recorded;
  /// flips newer than the last rebuild mean device copies may differ from
  /// host truth.
  bool flips_since_scrub() const {
    if (!vgpu::fault_injection_enabled()) return false;
    return flip_events() > flips_seen_;
  }
  static std::size_t flip_events() {
    const auto& inj = vgpu::FaultInjector::instance();
    return inj.count(vgpu::FaultKind::kEccFlip) +
           inj.count(vgpu::FaultKind::kTransferCorrupt);
  }

  /// (Re)build the active format on the active device. Construction itself
  /// walks the same ladder: preprocessing OOM falls down the chain,
  /// transient faults in tuner launches retry, detected corruption during
  /// upload retries the build (a fresh build *is* the scrub), device loss
  /// fails over.
  void rebuild(const char* why) {
    inner_.reset();  // free the old replica before re-allocating
    int retries_left = opt_.retry.max_retries;
    int scrubs_left = opt_.max_scrubs;
    double backoff = opt_.retry.backoff_s;
    for (;;) {
      if (devices_[device_pos_]->lost()) {
        // The active device died before we got here (e.g. loss during a
        // transfer of the build we are retrying).
        std::size_t next = device_pos_ + 1;
        while (next < devices_.size() && devices_[next]->lost()) ++next;
        if (next >= devices_.size())
          throw vgpu::DeviceLost(devices_[device_pos_]->spec().name, why,
                                 "no surviving device to rebuild on");
        device_pos_ = next;
        ++failovers_;
        note("recovery:failover to device '" +
             active_device().spec().name + "'");
      }
      try {
        inner_ = make_engine<T>(active_format(), active_device(), host_,
                                cfg_);
        flips_seen_ = flip_events();
        this->invalidate_cache();
        return;
      } catch (const vgpu::DeviceOom& e) {
        note(std::string("fault:oom ") + e.what());
        advance_chain_or_rethrow();
      } catch (const acsr::InputError&) {
        // A format's own refusal (pure ELL's expansion bound): degraded
        // mode, same as preprocessing OOM — unless nothing is left to
        // degrade to.
        advance_chain_or_rethrow();
      } catch (const vgpu::TransientFault& e) {
        if (retries_left-- == 0) throw;
        note("fault:transient " + where_of(e));
        timeline_.enqueue(stream_, backoff, "recovery:retry backoff (build)");
        if (prof::profiler_enabled()) [[unlikely]]
          prof::Profiler::instance().add_retry_backoff(backoff, "(build)");
        if (slo::slo_enabled()) [[unlikely]]
          slo::Tracer::instance().charge(slo::SpanKind::kRetryBackoff,
                                         "recovery:retry backoff (build)",
                                         "recovery", backoff);
        ++retries_;
        backoff *= opt_.retry.backoff_growth;
      } catch (const vgpu::DataCorruption& e) {
        if (scrubs_left-- == 0) throw;
        note("fault:corruption " + where_of(e));
        ++scrubs_;
        note("recovery:scrub rebuilding " + active_format());
      } catch (const vgpu::DeviceLost& e) {
        note("fault:lost " + where_of(e));
        // Loop top advances to the next surviving device (the lost_ flag
        // is already set on the struck device).
        if (!devices_[device_pos_]->lost()) throw;  // not ours: propagate
      }
    }
  }

  mat::Csr<T> host_;
  EngineConfig cfg_;
  ResilienceOptions opt_;
  std::vector<vgpu::Device*> devices_;
  std::size_t device_pos_ = 0;
  std::size_t chain_pos_ = 0;
  std::unique_ptr<spmv::SpmvEngine<T>> inner_;
  vgpu::StreamTimeline timeline_;
  vgpu::StreamTimeline::StreamId stream_ = 0;
  std::size_t flips_seen_ = 0;
  int retries_ = 0;
  int scrubs_ = 0;
  int fallbacks_ = 0;
  int failovers_ = 0;
  std::vector<std::string> recovery_log_;
};

}  // namespace acsr::core
