// Engine factory: build any SpMV engine by name. Sits in core (the top of
// the library stack) because it knows both the baselines and ACSR.
#pragma once

#include <memory>
#include <string>

#include "analysis/verify.hpp"
#include "core/acsr_engine.hpp"
#include "core/engine_registry.hpp"
#include "core/memo_engine.hpp"
#include "core/ooc_engine.hpp"
#include "spmv/bccoo_engine.hpp"
#include "spmv/bcsr_engine.hpp"
#include "spmv/brc_engine.hpp"
#include "spmv/coo_engine.hpp"
#include "spmv/csr_scalar.hpp"
#include "spmv/csr_vector.hpp"
#include "spmv/ell_engine.hpp"
#include "spmv/hyb_engine.hpp"
#include "spmv/merge_csr_engine.hpp"
#include "spmv/sell_engine.hpp"
#include "spmv/sic_engine.hpp"
#include "spmv/tcoo_engine.hpp"

namespace acsr::core {

struct EngineConfig {
  /// HYB's ELL/COO split threshold population (4096 on real hardware;
  /// benches scale it with the corpus).
  mat::index_t hyb_breakeven = 4096;
  /// BCSR tile edge length.
  int bcsr_block = 2;
  /// SELL-C-sigma sorting-window size (multiple of 32).
  mat::index_t sell_sigma = 256;
  AcsrOptions acsr;
  /// Out-of-core streaming tier (budget, storage array, retry policy).
  OocOptions ooc;
};

/// Known names: csr-scalar, csr (cuSPARSE warp-per-row), csr-vector
/// (CUSP-adaptive), ell, coo, hyb, brc, bccoo, tcoo, sic, bcsr, sell
/// (SELL-C-sigma), merge-csr (Merrill-Garland style), acsr, acsr-binning
/// (dynamic parallelism off), ooc-csr (out-of-core streaming tier).
template <class T>
std::unique_ptr<spmv::SpmvEngine<T>> make_engine(const std::string& name,
                                                 vgpu::Device& dev,
                                                 const mat::Csr<T>& a,
                                                 EngineConfig cfg = {}) {
  // The registry (engine_registry.hpp) is the single source of truth for
  // factory names: unknown names are rejected here, aliases collapse to
  // their canonical spelling, and the verifier/audit proof matrices
  // enumerate the same table — an engine cannot exist for dispatch but be
  // skipped by the proofs.
  const char* canon_p = canonical_engine_name(name);
  ACSR_REQUIRE(canon_p != nullptr, "unknown SpMV engine '" << name << "'");
  const std::string canon = canon_p;
  // Opt-in pre-launch gate (ACSR_VERIFY=1): statically prove the engine's
  // kernels safe for its whole shape class on this device before building
  // it. Costs one cached-bool branch when the variable is unset.
  if (analysis::verify_enabled()) [[unlikely]]
    analysis::verify_engine_or_throw(canon, dev.spec());
  auto build = [&]() -> std::unique_ptr<spmv::SpmvEngine<T>> {
    if (canon == "csr-scalar")
      return std::make_unique<spmv::CsrScalarEngine<T>>(dev, a);
    if (canon == "csr-vector")
      return std::make_unique<spmv::CsrVectorEngine<T>>(dev, a);
    // The paper's "CSR" series: cuSPARSE-era csrmv with a fixed warp (32
    // lanes) per row, which refetches sectors shared by adjacent short rows
    // from different warps — the real penalty on power-law matrices.
    if (canon == "csr")
      return std::make_unique<spmv::CsrVectorEngine<T>>(dev, a, 32);
    if (canon == "ell") return std::make_unique<spmv::EllEngine<T>>(dev, a);
    if (canon == "coo") return std::make_unique<spmv::CooEngine<T>>(dev, a);
    if (canon == "hyb")
      return std::make_unique<spmv::HybEngine<T>>(dev, a, cfg.hyb_breakeven);
    if (canon == "brc") return std::make_unique<spmv::BrcEngine<T>>(dev, a);
    if (canon == "bccoo")
      return std::make_unique<spmv::BccooEngine<T>>(dev, a);
    if (canon == "tcoo") return std::make_unique<spmv::TcooEngine<T>>(dev, a);
    if (canon == "sic") return std::make_unique<spmv::SicEngine<T>>(dev, a);
    if (canon == "merge-csr")
      return std::make_unique<spmv::MergeCsrEngine<T>>(dev, a);
    if (canon == "sell")
      return std::make_unique<spmv::SellEngine<T>>(dev, a, cfg.sell_sigma);
    if (canon == "bcsr")
      return std::make_unique<spmv::BcsrEngine<T>>(dev, a, cfg.bcsr_block);
    if (canon == "acsr")
      return std::make_unique<AcsrEngine<T>>(dev, a, cfg.acsr);
    if (canon == "acsr-binning") {
      AcsrOptions o = cfg.acsr;
      o.binning.enable_dp = false;
      return std::make_unique<AcsrEngine<T>>(dev, a, o);
    }
    if (canon == "ooc-csr")
      return std::make_unique<OocCsrEngine<T>>(dev, a, cfg.ooc);
    ACSR_REQUIRE(false, "engine '" << canon
                                   << "' is registered but has no builder");
  };
  auto engine = build();
  // Memo plane (ACSR_MEMO=1): wrap the engine so repeated simulate() calls
  // replay the first call's metering (vgpu/memo.hpp). One cached-bool
  // branch when the variable is unset.
  if (vgpu::memo::memo_enabled()) [[unlikely]]
    return std::make_unique<MemoEngine<T>>(std::move(engine));
  return engine;
}

}  // namespace acsr::core
