#include "core/binning.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace acsr::core {

Binning Binning::build(const std::vector<mat::offset_t>& row_nnz,
                       const BinningOptions& opt, vgpu::HostModel* hm) {
  ACSR_CHECK(opt.bin_max >= 1);
  ACSR_CHECK(opt.row_max >= 0);

  Binning b;
  b.options = opt;
  const bool dp = opt.enable_dp && opt.row_max > 0;

  for (std::size_t r = 0; r < row_nnz.size(); ++r) {
    const auto n = row_nnz[r];
    ACSR_CHECK(n >= 0);
    if (n == 0) continue;  // empty rows produce no work
    const std::size_t bin =
        Log2Histogram::bucket_of(static_cast<std::uint64_t>(n));
    if (dp && bin > static_cast<std::size_t>(opt.bin_max)) {
      b.dp_rows.push_back(static_cast<mat::index_t>(r));
    } else {
      if (b.bins.size() <= bin) b.bins.resize(bin + 1);
      b.bins[bin].push_back(static_cast<mat::index_t>(r));
    }
  }

  if (dp && !b.dp_rows.empty()) {
    // Longest rows first; overflow beyond RowMax falls back to the widest
    // bin-specific kernel so the pending-launch limit is never exceeded.
    std::stable_sort(b.dp_rows.begin(), b.dp_rows.end(),
                     [&](mat::index_t p, mat::index_t q) {
                       return row_nnz[static_cast<std::size_t>(p)] >
                              row_nnz[static_cast<std::size_t>(q)];
                     });
    if (b.dp_rows.size() > static_cast<std::size_t>(opt.row_max)) {
      for (std::size_t i = static_cast<std::size_t>(opt.row_max);
           i < b.dp_rows.size(); ++i) {
        const auto r = static_cast<std::size_t>(b.dp_rows[i]);
        const std::size_t bin = Log2Histogram::bucket_of(
            static_cast<std::uint64_t>(row_nnz[r]));
        if (b.bins.size() <= bin) b.bins.resize(bin + 1);
        b.bins[bin].push_back(b.dp_rows[i]);
      }
      b.dp_rows.resize(static_cast<std::size_t>(opt.row_max));
    }
  }

  if (hm != nullptr) {
    // One read + one append per row, plus the (short) tail sort.
    const double n = static_cast<double>(row_nnz.size());
    const double tail = static_cast<double>(b.dp_rows.size());
    hm->charge_ops(2.0 * n + tail * std::max(1.0, std::log2(tail + 2.0)));
  }
  return b;
}

}  // namespace acsr::core
