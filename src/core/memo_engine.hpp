// Memoizing SpMV engine decorator (ACSR_MEMO=1).
//
// make_engine wraps every engine it builds in a MemoEngine when the memo
// plane is on. The first simulate() captures the engine's launch sequence
// (per-launch Counters, roofline terms and duration); every later
// simulate() replays it — kernels re-run value-only for the numeric y,
// metering comes from the cache. Static engines have a fixed structure, so
// the only key material beyond the identity is the per-instance tag: a
// rebuilt engine (e.g. the resilient driver's scrub/fallback/failover
// paths recreate engines through make_engine) starts cold and its
// predecessor's entries are erased by the Memoizer destructor — stale
// metering cannot be replayed. apply() and every query delegate untouched.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "slo/trace.hpp"
#include "spmv/engine.hpp"
#include "vgpu/memo.hpp"

namespace acsr::core {

template <class T>
class MemoEngine final : public spmv::SpmvEngine<T> {
 public:
  explicit MemoEngine(std::unique_ptr<spmv::SpmvEngine<T>> inner)
      : inner_(std::move(inner)),
        memo_(vgpu::memo::spec_fingerprint(inner_->device().spec()) + "|" +
              inner_->name() + "|" + identity(*inner_)) {}

  const std::string& name() const override { return inner_->name(); }
  vgpu::Device& device() override { return inner_->device(); }
  mat::index_t rows() const override { return inner_->rows(); }
  mat::index_t cols() const override { return inner_->cols(); }
  mat::offset_t nnz() const override { return inner_->nnz(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    inner_->apply(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    annotate_span("spmv");
    return memo_.run(inner_->device(), "spmv",
                     [&] { return inner_->simulate(x, y); });
  }

  void apply_batch(const mat::DenseBlock<T>& x_block,
                   mat::DenseBlock<T>& y_block) const override {
    inner_->apply_batch(x_block, y_block);
  }

  /// Batched launches are memoized per batch width: a static engine's
  /// SpMM launch sequence is fixed for a given k, and the engines keep
  /// per-width scratch so replay addresses stay stationary. Width 0 never
  /// launches (nothing to capture); width 1 routes to the scalar engines'
  /// SpMV path, so it shares the "spmv" key with simulate() — the memo
  /// cache is warm either way round.
  double simulate_batch(const mat::DenseBlock<T>& x_block,
                        mat::DenseBlock<T>& y_block) override {
    if (x_block.width == 0) return inner_->simulate_batch(x_block, y_block);
    const std::string subkey =
        x_block.width == 1 ? "spmv" : "spmm/k" + std::to_string(x_block.width);
    annotate_span(subkey);
    return memo_.run(inner_->device(), subkey,
                     [&] { return inner_->simulate_batch(x_block, y_block); });
  }

  const spmv::EngineReport& report() const override {
    return inner_->report();
  }

  spmv::SpmvEngine<T>& inner() { return *inner_; }
  const vgpu::memo::Memoizer& memoizer() const { return memo_; }

 private:
  /// Tracing hook: mark the enclosing execution span capture vs replay.
  /// Annotate-ONLY — the memo plane must never create spans, or span
  /// trees (and their histograms) would differ between ACSR_MEMO=0/1
  /// (tests/test_slo.cpp pins that determinism).
  void annotate_span(const std::string& subkey) const {
    if (slo::slo_enabled()) [[unlikely]] {
      if (!vgpu::memo::memo_enabled()) return;
      const bool hit = vgpu::memo::MemoCache::instance().find(
                           memo_.tag() + subkey) != nullptr;
      slo::Tracer::instance().annotate_open("memo",
                                            hit ? "replay" : "capture");
    }
  }

  static std::string identity(const spmv::SpmvEngine<T>& e) {
    return std::to_string(e.rows()) + "x" + std::to_string(e.cols()) + "/" +
           std::to_string(e.nnz()) + "/w" + std::to_string(sizeof(T));
  }

  std::unique_ptr<spmv::SpmvEngine<T>> inner_;
  vgpu::memo::Memoizer memo_;
};

}  // namespace acsr::core
