// Matrix algebra helpers (mat/ops.hpp): diagonals, norms, union add,
// slicing, symmetry, and structural deltas (incl. property checks against
// the dynamic-update machinery).
#include <gtest/gtest.h>

#include "apps/cg.hpp"
#include "graph/dynamic.hpp"
#include "graph/powerlaw.hpp"
#include "mat/ops.hpp"

namespace {

using namespace acsr::mat;

Csr<double> small() {
  Coo<double> c;
  c.rows = 3;
  c.cols = 3;
  c.push(0, 0, 2.0);
  c.push(0, 2, 1.0);
  c.push(1, 1, -3.0);
  c.push(2, 0, 4.0);
  return Csr<double>::from_coo(c);
}

TEST(MatOps, ExtractDiagonal) {
  const auto d = extract_diagonal(small());
  EXPECT_EQ(d, (std::vector<double>{2.0, -3.0, 0.0}));
}

TEST(MatOps, FrobeniusNorm) {
  EXPECT_DOUBLE_EQ(frobenius_norm(small()),
                   std::sqrt(4.0 + 1.0 + 9.0 + 16.0));
}

TEST(MatOps, AddUnionAndCancellation) {
  const auto a = small();
  Csr<double> b = a;
  scale(b, -1.0);
  // a + (-a) cancels every entry out of the result.
  const auto zero = add(a, b);
  EXPECT_EQ(zero.nnz(), 0);
  // 2a - a == a.
  const auto same = add(a, a, 2.0, -1.0);
  EXPECT_TRUE(approx_equal(same, a, 1e-12));
  // Union sparsity: add a matrix with a disjoint entry.
  Coo<double> extra;
  extra.rows = 3;
  extra.cols = 3;
  extra.push(1, 2, 5.0);
  const auto c = add(a, Csr<double>::from_coo(extra));
  EXPECT_EQ(c.nnz(), a.nnz() + 1);
}

TEST(MatOps, AddRejectsShapeMismatch) {
  Csr<double> b;
  b.rows = 2;
  b.cols = 3;
  b.row_off.assign(3, 0);
  EXPECT_THROW(add(small(), b), acsr::InvariantError);
}

TEST(MatOps, SpmvDistributesOverAdd) {
  acsr::graph::PowerLawSpec s;
  s.rows = 200;
  s.cols = 200;
  s.mean_nnz_per_row = 5.0;
  s.seed = 4;
  const auto a = acsr::graph::powerlaw_matrix(s);
  s.seed = 9;
  const auto b = acsr::graph::powerlaw_matrix(s);
  const auto c = add(a, b, 2.0, 0.5);
  std::vector<double> x(200);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0 + (i % 3);
  std::vector<double> ya, yb, yc;
  a.spmv(x, ya);
  b.spmv(x, yb);
  c.spmv(x, yc);
  for (std::size_t i = 0; i < yc.size(); ++i)
    EXPECT_NEAR(yc[i], 2.0 * ya[i] + 0.5 * yb[i], 1e-9);
}

TEST(MatOps, SymmetryPredicates) {
  EXPECT_FALSE(is_symmetric(small()));
  const auto lap = acsr::apps::laplacian_2d<double>(6, 5);
  EXPECT_TRUE(is_symmetric(lap));
  EXPECT_EQ(structural_bandwidth(lap), 6);  // the nx off-diagonal
}

TEST(MatOps, RowSlice) {
  const auto a = small();
  const auto s = row_slice(a, 1, 3);
  EXPECT_EQ(s.rows, 2);
  EXPECT_EQ(s.nnz(), 2);
  std::vector<double> x{1, 2, 3}, y_full, y_slice;
  a.spmv(x, y_full);
  s.spmv(x, y_slice);
  EXPECT_DOUBLE_EQ(y_slice[0], y_full[1]);
  EXPECT_DOUBLE_EQ(y_slice[1], y_full[2]);
  EXPECT_THROW(row_slice(a, 2, 1), acsr::InvariantError);
}

TEST(MatOps, StructuralDeltaMatchesUpdateBatch) {
  acsr::graph::PowerLawSpec s;
  s.rows = 500;
  s.cols = 500;
  s.mean_nnz_per_row = 6.0;
  s.alpha = 1.6;
  s.max_row_nnz = 80;
  s.seed = 21;
  Csr<double> before = acsr::graph::powerlaw_matrix(s);
  Csr<double> after = before;
  acsr::graph::UpdateParams p;
  p.seed = 5;
  const auto batch = acsr::graph::generate_update(after, p);
  acsr::graph::apply_update_host(after, batch);
  // Each delete and each insert is exactly one structural difference —
  // except delete+reinsert of the same column, which cancels.
  acsr::mat::offset_t reinserted = 0;
  for (std::size_t i = 0; i < batch.rows.size(); ++i)
    for (auto k = batch.ins_off[i]; k < batch.ins_off[i + 1]; ++k) {
      const auto c = batch.ins_cols[static_cast<std::size_t>(k)];
      if (std::binary_search(batch.del_cols.begin() + batch.del_off[i],
                             batch.del_cols.begin() + batch.del_off[i + 1],
                             c))
        ++reinserted;
    }
  const auto expected = static_cast<acsr::mat::offset_t>(
      batch.num_deletes() + batch.num_inserts()) - 2 * reinserted;
  EXPECT_EQ(structural_delta(before, after), expected);
  EXPECT_EQ(structural_delta(before, before), 0);
}

}  // namespace
