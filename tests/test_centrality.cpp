// Katz centrality and label-propagation connected components, plus the
// SELL-C-sigma engine that rounds out the sliced-format family.
#include <gtest/gtest.h>

#include "apps/centrality.hpp"
#include "core/acsr_engine.hpp"
#include "graph/powerlaw.hpp"
#include "spmv/sell_engine.hpp"

namespace {

using namespace acsr;
using vgpu::Device;
using vgpu::DeviceSpec;

mat::Csr<double> two_triangles_and_isolated() {
  // Component A: 0-1-2 triangle. Component B: 3-4. Vertex 5 isolated.
  mat::Coo<double> c;
  c.rows = 6;
  c.cols = 6;
  c.push(0, 1, 1.0);
  c.push(1, 2, 1.0);
  c.push(2, 0, 1.0);
  c.push(3, 4, 1.0);
  return mat::Csr<double>::from_coo(c);
}

TEST(Katz, ConvergesAndRespectsStructure) {
  graph::PowerLawSpec s;
  s.rows = 300;
  s.cols = 300;
  s.mean_nnz_per_row = 5.0;
  s.alpha = 1.6;
  s.max_row_nnz = 60;
  s.seed = 14;
  const auto a = graph::powerlaw_matrix(s);
  Device dev(DeviceSpec::gtx_titan());
  core::AcsrEngine<double> engine(dev, a.transpose());
  apps::KatzConfig cfg;
  cfg.alpha = 0.02;  // well inside the convergence radius
  const auto res = apps::katz_centrality(engine, cfg);
  ASSERT_TRUE(res.converged);
  // Every score at least beta; vertices with in-edges strictly above.
  mat::index_t max_in = 0, argmax = 0;
  std::vector<int> indeg(300, 0);
  for (mat::index_t c : a.col_idx) ++indeg[static_cast<std::size_t>(c)];
  for (mat::index_t v = 0; v < 300; ++v)
    if (indeg[static_cast<std::size_t>(v)] > max_in) {
      max_in = indeg[static_cast<std::size_t>(v)];
      argmax = v;
    }
  for (double v : res.scores) EXPECT_GE(v, 1.0 - 1e-12);
  // The max-in-degree vertex scores in the top decile.
  std::vector<double> sorted = res.scores;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GE(res.scores[static_cast<std::size_t>(argmax)],
            sorted[sorted.size() * 9 / 10]);
}

TEST(Katz, MatchesClosedFormOnChain) {
  // 0 -> 1 -> 2: x = beta(1, 1, 1) + alpha A^T x gives
  // x0 = b, x1 = b + a*x0, x2 = b + a*x1.
  mat::Coo<double> c;
  c.rows = 3;
  c.cols = 3;
  c.push(0, 1, 1.0);
  c.push(1, 2, 1.0);
  const auto a = mat::Csr<double>::from_coo(c);
  Device dev(DeviceSpec::gtx_titan());
  core::AcsrEngine<double> engine(dev, a.transpose());
  apps::KatzConfig cfg;
  cfg.alpha = 0.5;
  const auto res = apps::katz_centrality(engine, cfg);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.scores[0], 1.0, 1e-6);
  EXPECT_NEAR(res.scores[1], 1.5, 1e-6);
  EXPECT_NEAR(res.scores[2], 1.75, 1e-6);
}

TEST(Components, FindsKnownComponents) {
  const auto a = two_triangles_and_isolated();
  Device dev(DeviceSpec::gtx_titan());
  core::AcsrEngine<double> engine(dev, a);
  const auto res = apps::connected_components(engine, a);
  EXPECT_EQ(res.num_components, 3);
  EXPECT_EQ(res.label[0], res.label[1]);
  EXPECT_EQ(res.label[1], res.label[2]);
  EXPECT_EQ(res.label[3], res.label[4]);
  EXPECT_NE(res.label[0], res.label[3]);
  EXPECT_EQ(res.label[5], 5);
  EXPECT_GT(res.total_s, 0.0);
}

TEST(Components, SingleComponentOnConnectedGraph) {
  // Ring of 64 vertices.
  mat::Coo<double> c;
  c.rows = 64;
  c.cols = 64;
  for (mat::index_t v = 0; v < 64; ++v) c.push(v, (v + 1) % 64, 1.0);
  const auto a = mat::Csr<double>::from_coo(c);
  Device dev(DeviceSpec::gtx_titan());
  core::AcsrEngine<double> engine(dev, a);
  const auto res = apps::connected_components(engine, a);
  EXPECT_EQ(res.num_components, 1);
  for (auto l : res.label) EXPECT_EQ(l, 0);
}

// --------------------------------------------------------------------------
// SELL-C-sigma.

TEST(Sell, MatchesReferenceAcrossSigmas) {
  graph::PowerLawSpec s;
  s.rows = 700;
  s.cols = 700;
  s.mean_nnz_per_row = 7.0;
  s.alpha = 1.6;
  s.max_row_nnz = 200;
  s.seed = 99;
  const auto a = graph::powerlaw_matrix(s);
  std::vector<double> x(700);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.3 + (i % 5) * 0.2;
  std::vector<double> ref;
  a.spmv(x, ref);
  for (mat::index_t sigma : {32, 128, 1024}) {
    SCOPED_TRACE(sigma);
    Device dev(DeviceSpec::gtx_titan());
    spmv::SellEngine<double> e(dev, a, sigma);
    std::vector<double> y;
    e.simulate(x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_NEAR(y[i], ref[i], 1e-9);
    std::vector<double> ya;
    e.apply(x, ya);
    EXPECT_EQ(ya.size(), ref.size());
  }
}

TEST(Sell, BiggerSigmaLessPadding) {
  graph::PowerLawSpec s;
  s.rows = 2000;
  s.cols = 2000;
  s.mean_nnz_per_row = 6.0;
  s.alpha = 1.5;
  s.max_row_nnz = 300;
  s.seed = 123;
  const auto a = graph::powerlaw_matrix(s);
  Device d1(DeviceSpec::gtx_titan()), d2(DeviceSpec::gtx_titan());
  spmv::SellEngine<double> narrow(d1, a, 32);     // no sorting benefit
  spmv::SellEngine<double> wide(d2, a, 2016);     // near-global sort
  EXPECT_LT(wide.report().padding_ratio, narrow.report().padding_ratio);
}

TEST(Sell, RejectsBadSigma) {
  const auto a = two_triangles_and_isolated();
  Device dev(DeviceSpec::gtx_titan());
  EXPECT_THROW(spmv::SellEngine<double>(dev, a, 33), InputError);
  EXPECT_THROW(spmv::SellEngine<double>(dev, a, 0), InputError);
}

}  // namespace
