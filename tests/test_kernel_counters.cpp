// Golden-counter tests: for small hand-crafted matrices, pin the exact
// hardware-event counts the SpMV kernels generate. These are the cost
// model's regression net — any change to coalescing, caching, or kernel
// structure that shifts a count shows up here first.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "spmv/sell_engine.hpp"

namespace {

using namespace acsr;

/// 32 rows x 32 cols, dense rows of exactly 4 entries at columns
/// {r, r+1, r+2, r+3} mod 32 — fully regular, so counts are predictable.
mat::Csr<float> regular32() {
  mat::Csr<float> m;
  m.rows = 32;
  m.cols = 32;
  m.row_off.assign(33, 0);
  for (mat::index_t r = 0; r < 32; ++r) {
    // Keep columns sorted within the row.
    std::array<mat::index_t, 4> cols{};
    for (int j = 0; j < 4; ++j)
      cols[static_cast<std::size_t>(j)] = (r + j) % 32;
    std::sort(cols.begin(), cols.end());
    for (mat::index_t c : cols) {
      m.col_idx.push_back(c);
      m.vals.push_back(1.0f);
    }
    m.row_off[static_cast<std::size_t>(r) + 1] =
        static_cast<mat::offset_t>(m.col_idx.size());
  }
  m.validate();
  return m;
}

template <class Engine>
vgpu::Counters run_and_count(Engine& e, mat::index_t cols) {
  std::vector<float> x(static_cast<std::size_t>(cols), 1.0f), y;
  e.simulate(x, y);
  return e.report().last_run.counters;
}

TEST(KernelCounters, CsrScalarOnRegularMatrix) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  const auto m = regular32();
  spmv::CsrScalarEngine<float> e(dev, m);
  const auto c = run_and_count(e, m.cols);
  // One warp handles all 32 rows; the whole matrix is 128 nnz.
  EXPECT_EQ(c.warps, 4u);  // block_dim 128 -> 4 warps, 3 of them idle
  // col_idx: 128 x 4 B = 512 B = 16 sectors; vals the same; row extents:
  // 33 x 4 B = 5 sectors loaded twice but cached per warp -> 5.
  // Every sector is touched exactly once thanks to the per-warp cache.
  EXPECT_EQ(c.gmem_transactions,
            16u + 16u + 5u + /*y store 32 x 4B*/ 4u);
  // x through texture: 32 x 4 B = 4 sectors, each touched once.
  EXPECT_EQ(c.tex_transactions, 4u);
  // 2 flops per nnz.
  EXPECT_EQ(c.sp_flops, 256u);
  EXPECT_EQ(c.atomic_ops, 0u);
}

TEST(KernelCounters, CooKernelSegments) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  const auto m = regular32();
  spmv::CooEngine<float> e(dev, m);
  const auto c = run_and_count(e, m.cols);
  // 128 entries -> 4 warps of 32 entries; rows of 4 nnz -> 8 segments per
  // warp -> 8 atomic tails each.
  EXPECT_EQ(c.atomic_ops, 32u);        // one per segment tail, 4 x 8
  EXPECT_EQ(c.atomic_conflicts, 0u);   // distinct rows
  // Segmented scan: 5 shuffle steps per warp.
  EXPECT_EQ(c.shuffle_ops, 4u * 5u);
  EXPECT_EQ(c.sp_flops, /*products*/ 128u + /*scan adds*/ 4u * 5u * 32u);
}

TEST(KernelCounters, EllSlabIsFullyCoalesced) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  const auto m = regular32();
  spmv::EllEngine<float> e(dev, m);
  ASSERT_DOUBLE_EQ(e.report().padding_ratio, 0.0);  // all rows width 4
  const auto c = run_and_count(e, m.cols);
  // Slab: 32 rows x 4 slots x (4 B col + 4 B val) = 1 KiB = 32 sectors,
  // plus 4 sectors for the y stores.
  EXPECT_EQ(c.gmem_transactions, 32u + 4u);
  EXPECT_EQ(c.tex_transactions, 4u);  // x cached across the 4 columns
}

TEST(KernelCounters, AcsrSingleBinMatchesVectorKernel) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  const auto m = regular32();
  core::AcsrEngine<float> e(dev, m);
  // All rows have 4 nnz -> exactly one bin (bin 2: 3-4 nnz), V = 2.
  EXPECT_EQ(e.bin_grids(), 1);
  EXPECT_EQ(e.row_grids(), 0);
  const auto c = run_and_count(e, m.cols);
  // Bin kernel with V=2: 16 rows per warp -> 2 warps live (of 4 in block).
  EXPECT_EQ(c.child_launches, 0u);
  // Data traffic equals CSR's (same arrays) plus the row_map (32 x 4 B =
  // 4 sectors): 16 + 16 (col/val) + 5 (extents) + 4 (map) + 4 (y).
  EXPECT_EQ(c.gmem_transactions, 16u + 16u + 5u + 4u + 4u);
}

TEST(KernelCounters, SellSliceOnRegularMatrix) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  const auto md = regular32();
  spmv::SellEngine<float> e(dev, md, 32);
  ASSERT_DOUBLE_EQ(e.report().padding_ratio, 0.0);  // uniform widths
  const auto c = run_and_count(e, md.cols);
  // One slice: slab 32 x 4 x 8 B = 32 sectors; permutation 32 x 4 B = 4;
  // slice offset + width scalars = 2; y stores scattered by the (identity
  // up to stable sort) permutation = 4.
  EXPECT_EQ(c.gmem_transactions, 32u + 4u + 2u + 4u);
  EXPECT_EQ(c.sp_flops, 256u);
}

TEST(KernelCounters, MergeCsrBalancedChunks) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  const auto md = regular32();
  spmv::MergeCsrEngine<float> e(dev, md, 5);  // 160 items: 32 rows+128 nnz
  const auto c = run_and_count(e, md.cols);
  // ipl=5 x 32 lanes = 160 = exactly the path length: one full warp.
  EXPECT_EQ(c.warps, 4u);  // one live warp in the 128-thread block
  // Every row closes inside some lane's chunk -> 32 row publishes; a few
  // lanes end mid-row and add carries.
  EXPECT_GE(c.atomic_ops, 32u);
  EXPECT_LE(c.atomic_ops, 32u + 32u);
  EXPECT_EQ(c.sp_flops - /*carry scan adds*/ (c.shuffle_ops * 32u),
            256u);
}

TEST(KernelCounters, DeterministicAcrossRuns) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  const auto m = regular32();
  core::AcsrEngine<float> e(dev, m);
  const auto c1 = run_and_count(e, m.cols);
  const auto c2 = run_and_count(e, m.cols);
  EXPECT_EQ(c1.gmem_transactions, c2.gmem_transactions);
  EXPECT_EQ(c1.tex_transactions, c2.tex_transactions);
  EXPECT_EQ(c1.issue_cycles, c2.issue_cycles);
}

}  // namespace
