// Cross-engine differential fuzz harness (the paper's Table II claim,
// adversarially): every registered SpMV engine, on a few hundred seeded
// random matrices spanning the structural space (R-MAT, power-law,
// banded, empty-row-heavy, singleton rows, a dense row past the DP bin
// threshold, and degenerate shapes), must
//
//   1. match the host CSR oracle row-for-row, via both its host `apply`
//      path and its simulated device kernels, within a per-row tolerance
//      scaled by the row's nnz (reassociation bound), and
//   2. come out of a fully sanitizer-instrumented run with ZERO findings
//      (no OOB, no uninitialized reads, no races) — the same instrumentation
//      that test_sanitizer.cpp proves catches injected defects.
//
// Reproducibility: every matrix derives from ACSR_FUZZ_SEED (default 2014)
// through split streams, so a failure report's (seed, index) pair replays
// exactly. ACSR_FUZZ_MATRICES overrides the matrix count (default 200).
//
// A second mode fuzzes the *fault plane* (docs/RESILIENCE.md): random
// ACSR_FAULTS plans thrown at ResilientEngine must end in exactly one of
// two legal outcomes — a recovered result bit-identical to a clean run of
// the surviving format, or a typed recoverable error with device
// attribution. Never a crash, never a silent wrong answer.
// ACSR_FAULT_FUZZ overrides the plan count (default 200).
//
// A third mode fuzzes the *memo plane* (ACSR_MEMO, src/vgpu/memo.hpp):
// random matrices and engines driven through multi-iteration solve
// sequences — and, for the dynamic path, random update/solve
// interleavings over IncrementalCsr — must produce bit-identical results,
// durations, and Counters with memoization on and off.
// ACSR_MEMO_FUZZ overrides the case count (default 40).
//
// A fourth mode fuzzes the *batched SpMM path* (docs/SERVING.md): random
// (matrix, engine, width) triples must satisfy apply_batch == k scalar
// applies bit-for-bit, simulate_batch within the oracle tolerance per
// column, width 0 a free no-op — all under the sanitizer.
// ACSR_SPMM_FUZZ overrides the case count (default 60).
//
// A fifth mode fuzzes the *out-of-core storage plane* (docs/OOC.md):
// random ACSR_FAULTS `read` plans against budget-constrained streamed
// solves must recover to within 1e-9 of an in-core run or escape as a
// typed IoError; fault-free streamed solve sequences must be bit-equal
// with the memo plane off and on; and a natural-OOM fallback onto the
// ooc-csr rung must invalidate the displaced format's memo entries.
// ACSR_OOC_FUZZ overrides the case count (default 40).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/factory.hpp"
#include "core/incremental_csr.hpp"
#include "mat/dense_block.hpp"
#include "core/resilient.hpp"
#include "graph/dynamic.hpp"
#include "graph/powerlaw.hpp"
#include "graph/rmat.hpp"
#include "vgpu/device.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/memo.hpp"
#include "vgpu/sanitizer.hpp"

namespace {

using acsr::Rng;
using acsr::core::EngineConfig;
using acsr::core::make_engine;
using acsr::mat::Csr;
using acsr::mat::index_t;
using acsr::mat::offset_t;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceSpec;
using acsr::vgpu::Sanitizer;

const char* const kEngines[] = {
    "csr-scalar", "csr-vector", "csr",  "ell",  "coo",
    "hyb",        "brc",        "bccoo", "tcoo", "sic",
    "bcsr",       "sell",       "merge-csr", "acsr", "acsr-binning",
};

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// Append one row with `n` distinct sorted random columns.
void push_row(Csr<double>& m, int n, Rng& rng) {
  n = std::min<int>(n, m.cols);  // can't draw more distinct columns than exist
  std::vector<index_t> cols;
  cols.reserve(static_cast<std::size_t>(n));
  while (static_cast<int>(cols.size()) < n) {
    const auto c = static_cast<index_t>(rng.next_below(
        static_cast<std::uint64_t>(m.cols)));
    cols.push_back(c);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  }
  for (index_t c : cols) {
    m.col_idx.push_back(c);
    m.vals.push_back(rng.next_double(0.5, 1.5));
  }
  m.row_off.push_back(static_cast<offset_t>(m.col_idx.size()));
}

Csr<double> empty_matrix(index_t rows, index_t cols) {
  Csr<double> m;
  m.rows = rows;
  m.cols = cols;
  m.row_off.assign(static_cast<std::size_t>(rows) + 1, 0);
  return m;
}

/// Positive values everywhere (matrix and x) keep the sums cancellation-
/// free, so the reassociation error of any summation order is bounded by
/// ~nnz_row * eps relative — which is the tolerance the diff uses.
Csr<double> make_fuzz_matrix(std::size_t index, Rng rng,
                             std::string* family_out) {
  // A few fixed degenerate shapes first: the corners random draws would
  // rarely hit.
  switch (index) {
    case 0:
      *family_out = "zero (0x0)";
      return empty_matrix(0, 0);
    case 1:
      *family_out = "no-rows (0x7)";
      return empty_matrix(0, 7);
    case 2:
      *family_out = "all-empty (9x5)";
      return empty_matrix(9, 5);
    case 3: {
      *family_out = "single-cell (1x1)";
      Csr<double> m = empty_matrix(1, 1);
      m.col_idx.push_back(0);
      m.vals.push_back(1.25);
      m.row_off.back() = 1;
      return m;
    }
    case 4: {
      *family_out = "single-wide-row (1x400)";
      Csr<double> m = empty_matrix(0, 400);
      m.rows = 1;
      push_row(m, 320, rng);  // one row past the DP threshold (nnz > 256)
      return m;
    }
    case 5: {
      *family_out = "column (300x1)";
      Csr<double> m = empty_matrix(0, 1);
      m.rows = 300;
      for (int r = 0; r < 300; ++r) push_row(m, rng.next_bool(0.7) ? 1 : 0, rng);
      return m;
    }
    default:
      break;
  }

  switch (index % 6) {
    case 0: {
      acsr::graph::RmatParams p;
      p.scale = 4 + static_cast<int>(rng.next_below(4));  // 16..128 vertices
      p.edges_per_vertex = rng.next_double(1.0, 8.0);
      p.seed = rng.next_u64();
      *family_out = "rmat scale " + std::to_string(p.scale);
      Csr<double> m = Csr<double>::from_coo(acsr::graph::rmat(p));
      // R-MAT emits unit weights; re-draw into (0.5, 1.5).
      for (auto& v : m.vals) v = rng.next_double(0.5, 1.5);
      return m;
    }
    case 1: {
      acsr::graph::PowerLawSpec s;
      s.rows = 1 + static_cast<index_t>(rng.next_below(220));
      s.cols = 1 + static_cast<index_t>(rng.next_below(220));
      s.mean_nnz_per_row = rng.next_double(0.5, 10.0);
      s.alpha = rng.next_bool(0.7) ? rng.next_double(0.8, 2.5) : -1.0;
      s.max_row_nnz = std::max<offset_t>(1, s.cols / 2);
      s.tail_rows = static_cast<int>(rng.next_below(4));
      s.seed = rng.next_u64();
      *family_out = "powerlaw " + std::to_string(s.rows) + "x" +
                    std::to_string(s.cols);
      Csr<double> m = acsr::graph::powerlaw_matrix(s);
      for (auto& v : m.vals) v = rng.next_double(0.5, 1.5);
      return m;
    }
    case 2: {  // banded: the regular contrast to the power-law families
      const auto n = static_cast<index_t>(1 + rng.next_below(180));
      const int band = 1 + static_cast<int>(rng.next_below(8));
      *family_out = "banded " + std::to_string(n) + " band " +
                    std::to_string(band);
      Csr<double> m = empty_matrix(0, n);
      m.rows = n;
      m.row_off.assign(1, 0);
      for (index_t r = 0; r < n; ++r) {
        const index_t lo = std::max<index_t>(0, r - band);
        const index_t hi = std::min<index_t>(n - 1, r + band);
        for (index_t c = lo; c <= hi; ++c) {
          if (!rng.next_bool(0.8)) continue;
          m.col_idx.push_back(c);
          m.vals.push_back(rng.next_double(0.5, 1.5));
        }
        m.row_off.push_back(static_cast<offset_t>(m.col_idx.size()));
      }
      return m;
    }
    case 3: {  // empty-row-heavy: bin-0 skipping under fire
      const auto n = static_cast<index_t>(2 + rng.next_below(250));
      *family_out = "empty-heavy " + std::to_string(n);
      Csr<double> m = empty_matrix(0, n);
      m.rows = n;
      for (index_t r = 0; r < n; ++r) {
        const bool occupied = rng.next_bool(0.12);
        push_row(m, occupied ? 1 + static_cast<int>(rng.next_below(
                                       static_cast<std::uint64_t>(
                                           std::min<index_t>(n, 24))))
                             : 0,
                 rng);
      }
      return m;
    }
    case 4: {  // singleton rows: every non-empty row has exactly one entry
      const auto n = static_cast<index_t>(1 + rng.next_below(200));
      *family_out = "singleton " + std::to_string(n);
      Csr<double> m = empty_matrix(0, n);
      m.rows = n;
      for (index_t r = 0; r < n; ++r) push_row(m, rng.next_bool(0.8) ? 1 : 0, rng);
      return m;
    }
    default: {  // one dense row past the DP bin threshold + sparse rest
      const auto n = static_cast<index_t>(340 + rng.next_below(100));
      const int dense = 257 + static_cast<int>(rng.next_below(80));
      *family_out = "dense-row " + std::to_string(n) + " nnz " +
                    std::to_string(dense);
      Csr<double> m = empty_matrix(0, n);
      m.rows = n;
      const auto dense_at = static_cast<index_t>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      for (index_t r = 0; r < n; ++r)
        push_row(m, r == dense_at ? dense
                                  : static_cast<int>(rng.next_below(4)),
                 rng);
      return m;
    }
  }
}

struct FuzzStats {
  std::size_t engine_runs = 0;
  std::size_t format_skips = 0;  // ELL refusing pathological shapes
};

void diff_against_oracle(const Csr<double>& a, const std::string& engine_name,
                         const std::vector<double>& x,
                         const std::vector<double>& y_ref, FuzzStats* stats) {
  SCOPED_TRACE("engine " + engine_name);
  Device dev(DeviceSpec::gtx_titan());
  EngineConfig cfg;
  cfg.hyb_breakeven = 64;  // scaled-down matrices: scale the CUSP constant

  std::unique_ptr<acsr::spmv::SpmvEngine<double>> engine;
  try {
    engine = make_engine<double>(engine_name, dev, a, cfg);
  } catch (const acsr::InputError&) {
    // Pure ELL legitimately refuses matrices whose padded slab would
    // explode; every other engine must take everything the fuzzer makes.
    ASSERT_EQ(engine_name, "ell");
    ++stats->format_skips;
    return;
  }

  std::vector<double> y_apply;
  engine->apply(x, y_apply);
  std::vector<double> y_sim;
  const double t = engine->simulate(x, y_sim);
  EXPECT_GE(t, 0.0);
  ++stats->engine_runs;

  ASSERT_EQ(y_apply.size(), y_ref.size());
  ASSERT_EQ(y_sim.size(), y_ref.size());
  const double eps = std::numeric_limits<double>::epsilon();
  for (std::size_t r = 0; r < y_ref.size(); ++r) {
    // Positive summands: any summation order is within ~nnz*eps relative.
    const double n_row =
        static_cast<double>(a.row_nnz(static_cast<index_t>(r)));
    const double tol =
        (8.0 + 8.0 * n_row) * eps * std::max(1.0, std::abs(y_ref[r]));
    EXPECT_NEAR(y_apply[r], y_ref[r], tol) << "apply diverges at row " << r;
    EXPECT_NEAR(y_sim[r], y_ref[r], tol) << "simulate diverges at row " << r;
  }

  // The sanitizer contract: a clean engine leaves zero findings.
  const auto& reports = Sanitizer::instance().reports();
  EXPECT_TRUE(reports.empty())
      << reports.size() << " sanitizer findings; first: "
      << reports.front().message;
}

TEST(DifferentialFuzz, AllEnginesMatchOracleUnderSanitizer) {
  const std::uint64_t seed = env_u64("ACSR_FUZZ_SEED", 2014);
  const std::size_t n_matrices =
      static_cast<std::size_t>(env_u64("ACSR_FUZZ_MATRICES", 200));

  Sanitizer& san = Sanitizer::instance();
  san.clear();
  san.set_enabled(true);
  const Rng root(seed);

  FuzzStats stats;
  std::size_t total_nnz = 0;
  for (std::size_t i = 0; i < n_matrices; ++i) {
    std::string family;
    const Csr<double> a =
        make_fuzz_matrix(i, root.split(i + 1), &family);
    a.validate();
    total_nnz += static_cast<std::size_t>(a.nnz());
    SCOPED_TRACE("matrix #" + std::to_string(i) + " [" + family +
                 "] seed " + std::to_string(seed));

    Rng xrng = root.split(0xabcd0000 + i);
    std::vector<double> x(static_cast<std::size_t>(a.cols));
    for (auto& v : x) v = xrng.next_double(0.5, 1.5);
    std::vector<double> y_ref;
    a.spmv(x, y_ref);

    for (const char* engine_name : kEngines) {
      diff_against_oracle(a, engine_name, x, y_ref, &stats);
      san.clear();  // findings asserted empty above; drop tombstones
      if (::testing::Test::HasFatalFailure()) break;
    }
    if (::testing::Test::HasFatalFailure()) break;
  }

  san.set_enabled(false);
  san.clear();

  // The harness must genuinely exercise the engine matrix: every engine on
  // (almost) every matrix, with only ELL's documented refusals skipped.
  const std::size_t expected =
      n_matrices * (sizeof(kEngines) / sizeof(kEngines[0]));
  EXPECT_EQ(stats.engine_runs + stats.format_skips, expected);
  if (n_matrices > 0) {
    EXPECT_LT(stats.format_skips, n_matrices);  // ELL must run sometimes
  }
  std::cout << "[fuzz] " << n_matrices << " matrices, " << total_nnz
            << " total nnz, " << stats.engine_runs << " engine runs, "
            << stats.format_skips << " format skips (seed " << seed << ")\n";
}

// Batched-SpMM fuzz: random (matrix, engine, width) triples. Contracts
// (docs/SERVING.md): the host batch path is the k scalar applies bit for
// bit; the device batch path — looped default or the real column-blocked
// SpMM kernels — matches the host CSR oracle per column within the same
// reassociation tolerance as the scalar leg; width 0 is a launch-free
// no-op; and the sanitizer stays silent throughout.
TEST(DifferentialFuzz, BatchedSpmmMatchesOracleUnderSanitizer) {
  const std::uint64_t seed = env_u64("ACSR_FUZZ_SEED", 2014);
  const std::size_t n_cases =
      static_cast<std::size_t>(env_u64("ACSR_SPMM_FUZZ", 60));
  using acsr::mat::DenseBlock;

  Sanitizer& san = Sanitizer::instance();
  san.clear();
  san.set_enabled(true);
  const Rng root(seed ^ 0x59f3);

  std::size_t batch_runs = 0;
  std::size_t format_skips = 0;
  for (std::size_t i = 0; i < n_cases; ++i) {
    Rng rng = root.split(i + 1);
    std::string family;
    const Csr<double> a = make_fuzz_matrix(i, root.split(i + 1), &family);
    a.validate();
    const char* engine_name = kEngines[rng.next_below(std::size(kEngines))];
    // Widths 0..12 cover the no-op, the width-1 fast path, a partial
    // column tile, and a multi-tile batch (kSpmmTile = 8).
    const int k = static_cast<int>(rng.next_below(13));
    SCOPED_TRACE("case #" + std::to_string(i) + " [" + family +
                 "] engine " + engine_name + " width " + std::to_string(k) +
                 " seed " + std::to_string(seed));

    DenseBlock<double> x(a.cols, k);
    for (int c = 0; c < k; ++c)
      for (index_t r = 0; r < a.cols; ++r)
        x.at(r, c) = rng.next_double(0.5, 1.5);

    Device dev(DeviceSpec::gtx_titan());
    EngineConfig cfg;
    cfg.hyb_breakeven = 64;
    std::unique_ptr<acsr::spmv::SpmvEngine<double>> engine;
    try {
      engine = make_engine<double>(engine_name, dev, a, cfg);
    } catch (const acsr::InputError&) {
      ASSERT_STREQ(engine_name, "ell");
      ++format_skips;
      continue;
    }

    DenseBlock<double> y_apply;
    engine->apply_batch(x, y_apply);
    DenseBlock<double> y_sim;
    const double t = engine->simulate_batch(x, y_sim);
    ++batch_runs;
    ASSERT_EQ(y_apply.rows, a.rows);
    ASSERT_EQ(y_apply.width, k);
    ASSERT_EQ(y_sim.rows, a.rows);
    ASSERT_EQ(y_sim.width, k);
    if (k == 0) {
      EXPECT_EQ(t, 0.0) << "width-0 batch must not launch";
    } else {
      EXPECT_GE(t, 0.0);
    }

    const double eps = std::numeric_limits<double>::epsilon();
    for (int c = 0; c < k; ++c) {
      const std::vector<double> xc = x.column(c);
      std::vector<double> y_scalar;
      engine->apply(xc, y_scalar);
      EXPECT_EQ(y_apply.column(c), y_scalar)
          << "apply_batch diverges from scalar apply at column " << c;
      std::vector<double> y_ref;
      a.spmv(xc, y_ref);
      const std::vector<double> y_col = y_sim.column(c);
      for (std::size_t r = 0; r < y_ref.size(); ++r) {
        const double n_row =
            static_cast<double>(a.row_nnz(static_cast<index_t>(r)));
        const double tol =
            (8.0 + 8.0 * n_row) * eps * std::max(1.0, std::abs(y_ref[r]));
        EXPECT_NEAR(y_col[r], y_ref[r], tol)
            << "simulate_batch diverges at column " << c << " row " << r;
      }
    }

    const auto& reports = Sanitizer::instance().reports();
    EXPECT_TRUE(reports.empty())
        << reports.size() << " sanitizer findings; first: "
        << reports.front().message;
    san.clear();
    if (::testing::Test::HasFatalFailure()) break;
  }
  san.set_enabled(false);
  san.clear();

  EXPECT_EQ(batch_runs + format_skips, n_cases);
  std::cout << "[spmm-fuzz] " << n_cases << " cases, " << batch_runs
            << " batch runs, " << format_skips << " format skips (seed "
            << seed << ")\n";
}

// Fault-plane fuzz: random injection plans (detectable kinds only — the
// silent=1 knob is the sanitizer-escape hatch, tested separately) against
// ResilientEngine with a standby device. Legal outcomes per case:
//
//   1. the driver recovers and the result is bitwise equal to a clean
//      simulate() of whatever format survived, on a fresh same-spec
//      device with injection off, or
//   2. a typed DeviceFault/DeviceOom escapes, carrying attribution.
//
// Anything else — a crash, a bare InvariantError, a silently wrong
// vector — is a bug in the recovery ladder.
TEST(DifferentialFuzz, RandomFaultPlansRecoverOrFailTyped) {
  const std::uint64_t seed = env_u64("ACSR_FUZZ_SEED", 2014);
  const std::size_t n_cases =
      static_cast<std::size_t>(env_u64("ACSR_FAULT_FUZZ", 200));
  using acsr::core::ResilientEngine;
  using acsr::vgpu::FaultInjector;

  static const char* const kClauses[] = {
      "oom@alloc",        "transient@launch", "ecc@launch", "corrupt@transfer",
      "stall@transfer",   "lost@launch",      "lost@transfer"};
  static const char* const kPreferred[] = {
      "csr-scalar", "csr", "ell", "hyb", "bccoo", "acsr", "acsr-binning"};

  const Rng root(seed ^ 0xfa0175);
  std::size_t recovered = 0;
  std::size_t typed_escapes = 0;
  for (std::size_t i = 0; i < n_cases; ++i) {
    Rng rng = root.split(i + 1);
    acsr::graph::PowerLawSpec s;
    s.rows = 8 + static_cast<index_t>(rng.next_below(120));
    s.cols = s.rows;
    s.mean_nnz_per_row = rng.next_double(1.0, 8.0);
    s.alpha = 1.6;
    s.max_row_nnz = std::max<offset_t>(1, s.rows / 2);
    s.seed = rng.next_u64();
    Csr<double> a = acsr::graph::powerlaw_matrix(s);
    for (auto& v : a.vals) v = rng.next_double(0.5, 1.5);

    std::string plan;
    const int n_clauses = 1 + static_cast<int>(rng.next_below(3));
    for (int c = 0; c < n_clauses; ++c) {
      if (c > 0) plan += ';';
      plan += kClauses[rng.next_below(std::size(kClauses))];
      plan += '#' + std::to_string(1 + rng.next_below(12));
      if (rng.next_bool(0.3)) plan += "*2";
      if (rng.next_bool(0.5))
        plan += ":seed=" + std::to_string(1 + rng.next_below(1000));
    }
    const std::string preferred =
        kPreferred[rng.next_below(std::size(kPreferred))];
    SCOPED_TRACE("case #" + std::to_string(i) + " plan '" + plan +
                 "' preferred " + preferred + " seed " + std::to_string(seed));

    std::vector<double> x(static_cast<std::size_t>(a.cols));
    for (auto& v : x) v = rng.next_double(0.5, 1.5);

    FaultInjector::instance().configure(plan);
    Device d0(DeviceSpec::gtx_titan());
    Device d1(DeviceSpec::gtx_titan());
    std::vector<double> y;
    std::string format;
    bool ok = false;
    try {
      ResilientEngine<double> engine({&d0, &d1}, a, preferred);
      engine.simulate(x, y);
      format = engine.active_format();
      ok = true;
    } catch (const acsr::vgpu::DeviceFault& e) {
      // Legal escalation (e.g. both devices lost): typed + attributed.
      EXPECT_FALSE(std::string(e.what()).empty());
      EXPECT_FALSE(e.device().empty());
      ++typed_escapes;
    } catch (const acsr::vgpu::DeviceOom& e) {
      // Fallback-chain exhaustion under persistent alloc failure.
      EXPECT_FALSE(std::string(e.what()).empty());
      ++typed_escapes;
    }
    FaultInjector::instance().disable();

    if (ok) {
      Device clean(DeviceSpec::gtx_titan());
      const auto oracle = make_engine<double>(format, clean, a, EngineConfig{});
      std::vector<double> want;
      oracle->simulate(x, want);
      EXPECT_EQ(y, want) << "recovered result diverges from a clean run of '"
                         << format << "'";
      ++recovered;
    }
    if (::testing::Test::HasFailure()) break;
  }
  FaultInjector::instance().disable();

  EXPECT_GT(recovered, 0u);  // the plans must not all be fatal
  std::cout << "[fault-fuzz] " << n_cases << " plans, " << recovered
            << " recovered bit-correct, " << typed_escapes
            << " typed escapes (seed " << seed << ")\n";
}

// ---------------------------------------------------------------------------
// Memo-plane fuzz.

#define EXPECT_COUNTER_EQ(field) \
  EXPECT_EQ(off.field, on.field) << "counter '" #field "' diverges"

void expect_counters_equal(const acsr::vgpu::Counters& off,
                           const acsr::vgpu::Counters& on) {
  EXPECT_COUNTER_EQ(blocks);
  EXPECT_COUNTER_EQ(warps);
  EXPECT_COUNTER_EQ(issue_cycles);
  EXPECT_COUNTER_EQ(sp_flops);
  EXPECT_COUNTER_EQ(dp_flops);
  EXPECT_COUNTER_EQ(gmem_requests);
  EXPECT_COUNTER_EQ(gmem_transactions);
  EXPECT_COUNTER_EQ(gmem_bytes);
  EXPECT_COUNTER_EQ(tex_requests);
  EXPECT_COUNTER_EQ(tex_transactions);
  EXPECT_COUNTER_EQ(tex_bytes);
  EXPECT_COUNTER_EQ(shuffle_ops);
  EXPECT_COUNTER_EQ(smem_accesses);
  EXPECT_COUNTER_EQ(atomic_ops);
  EXPECT_COUNTER_EQ(atomic_conflicts);
  EXPECT_COUNTER_EQ(child_launches);
  EXPECT_COUNTER_EQ(child_blocks);
}

#undef EXPECT_COUNTER_EQ

/// One multi-iteration solve sequence of `engine_name` on `a`: per-iter
/// simulated seconds and result vectors, plus the last run's counters.
struct SolveTrace {
  std::vector<double> ts;
  std::vector<std::vector<double>> ys;
  acsr::vgpu::KernelRun last;
  bool skipped = false;
};

SolveTrace run_solve_sequence(const Csr<double>& a, const char* engine_name,
                              const std::vector<std::vector<double>>& xs) {
  SolveTrace tr;
  Device dev(DeviceSpec::gtx_titan());
  EngineConfig cfg;
  cfg.hyb_breakeven = 64;
  std::unique_ptr<acsr::spmv::SpmvEngine<double>> engine;
  try {
    engine = make_engine<double>(engine_name, dev, a, cfg);
  } catch (const acsr::InputError&) {
    EXPECT_STREQ(engine_name, "ell");
    tr.skipped = true;
    return tr;
  }
  for (const auto& x : xs) {
    std::vector<double> y;
    tr.ts.push_back(engine->simulate(x, y));
    tr.ys.push_back(std::move(y));
  }
  tr.last = engine->report().last_run;
  return tr;
}

// Memoized multi-iteration solves (replay from iteration 2 on) must be
// observationally indistinguishable from unmemoized ones: same results,
// same durations, same counters, bit for bit.
TEST(DifferentialFuzz, MemoizedSolveSequencesMatchUnmemoizedExactly) {
  const std::uint64_t seed = env_u64("ACSR_FUZZ_SEED", 2014);
  const std::size_t n_cases =
      static_cast<std::size_t>(env_u64("ACSR_MEMO_FUZZ", 40));
  const Rng root(seed ^ 0x3e30);

  std::size_t compared = 0;
  for (std::size_t i = 0; i < n_cases; ++i) {
    Rng rng = root.split(i + 1);
    std::string family;
    const Csr<double> a = make_fuzz_matrix(i, root.split(i + 1), &family);
    a.validate();
    const char* engine_name = kEngines[rng.next_below(std::size(kEngines))];
    SCOPED_TRACE("case #" + std::to_string(i) + " [" + family +
                 "] engine " + engine_name + " seed " + std::to_string(seed));

    const int iters = 2 + static_cast<int>(rng.next_below(3));
    std::vector<std::vector<double>> xs;
    for (int k = 0; k < iters; ++k) {
      std::vector<double> x(static_cast<std::size_t>(a.cols));
      for (auto& v : x) v = rng.next_double(0.5, 1.5);
      xs.push_back(std::move(x));
    }

    acsr::vgpu::memo::set_memo_enabled(false);
    const SolveTrace off = run_solve_sequence(a, engine_name, xs);
    acsr::vgpu::memo::MemoCache::instance().clear();
    acsr::vgpu::memo::set_memo_enabled(true);
    const SolveTrace on = run_solve_sequence(a, engine_name, xs);
    acsr::vgpu::memo::set_memo_enabled(false);
    acsr::vgpu::memo::MemoCache::instance().clear();

    ASSERT_EQ(off.skipped, on.skipped);
    if (off.skipped) continue;
    EXPECT_EQ(off.ts, on.ts) << "simulated durations diverge";
    ASSERT_EQ(off.ys.size(), on.ys.size());
    for (std::size_t k = 0; k < off.ys.size(); ++k)
      EXPECT_EQ(off.ys[k], on.ys[k]) << "y diverges at iteration " << k;
    {
      const auto &off_run = off.last, &on_run = on.last;
      expect_counters_equal(off_run.counters, on_run.counters);
      EXPECT_EQ(off_run.duration_s, on_run.duration_s);
    }
    ++compared;
    if (::testing::Test::HasFatalFailure()) break;
  }
  std::cout << "[memo-fuzz] " << n_cases << " cases, " << compared
            << " compared memo-on vs memo-off (seed " << seed << ")\n";
}

// Dynamic path: random update/solve interleavings over IncrementalCsr,
// the solver leg keyed by the structure version. Updates must invalidate
// (key drift), solves between updates must replay, and the whole
// observable trace must match an unmemoized run exactly.
TEST(DifferentialFuzz, MemoizedUpdateSolveInterleavingsMatchExactly) {
  const std::uint64_t seed = env_u64("ACSR_FUZZ_SEED", 2014);
  const std::size_t n_cases =
      static_cast<std::size_t>(env_u64("ACSR_MEMO_FUZZ", 40) / 4 + 1);
  using acsr::core::AcsrLauncher;
  using acsr::core::Binning;
  using acsr::core::IncrementalCsr;

  const Rng root(seed ^ 0xd9a1);
  for (std::size_t i = 0; i < n_cases; ++i) {
    Rng rng = root.split(i + 1);
    acsr::graph::PowerLawSpec s;
    s.rows = 40 + static_cast<index_t>(rng.next_below(160));
    s.cols = s.rows;
    s.mean_nnz_per_row = rng.next_double(2.0, 8.0);
    s.alpha = 1.6;
    s.max_row_nnz = std::max<offset_t>(1, s.rows / 2);
    s.seed = rng.next_u64();
    Csr<double> a0 = acsr::graph::powerlaw_matrix(s);
    for (auto& v : a0.vals) v = rng.next_double(0.5, 1.5);

    // op sequence: true = solve, false = update (always starts with a
    // solve so the capture/replay pair is exercised before the first
    // invalidation).
    std::vector<bool> ops = {true, true};
    const int extra = 3 + static_cast<int>(rng.next_below(5));
    for (int k = 0; k < extra; ++k) ops.push_back(rng.next_bool(0.55));
    SCOPED_TRACE("case #" + std::to_string(i) + " rows " +
                 std::to_string(s.rows) + " ops " + std::to_string(ops.size()) +
                 " seed " + std::to_string(seed));

    const auto n = static_cast<std::size_t>(a0.rows);
    std::vector<double> x(n);
    for (auto& v : x) v = rng.next_double(0.5, 1.5);

    // Both runs replay this exact op/update schedule.
    auto run_trace = [&](bool memo_on) {
      acsr::vgpu::memo::MemoCache::instance().clear();
      acsr::vgpu::memo::set_memo_enabled(memo_on);
      std::vector<double> ts;
      std::vector<std::vector<double>> ys;
      Csr<double> current = a0;
      Device dev(DeviceSpec::gtx_titan());
      IncrementalCsr<double> inc(dev, current);
      auto x_dev = dev.alloc<double>(n, "fuzz.x");
      x_dev.host() = x;
      auto y_dev = dev.alloc<double>(n, "fuzz.y");
      acsr::core::AcsrOptions aopt;
      acsr::core::BinningOptions bopt = aopt.binning;
      bopt.enable_dp = dev.spec().supports_dynamic_parallelism();
      auto make_launcher = [&] {
        return std::make_unique<AcsrLauncher<double>>(
            dev, Binning::build(inc.row_lengths(), bopt, nullptr), aopt);
      };
      auto launcher = make_launcher();
      acsr::vgpu::memo::Memoizer memo(
          acsr::vgpu::memo::spec_fingerprint(dev.spec()) + "|fuzz-dyn");
      std::uint64_t update_seq = 0;
      for (const bool is_solve : ops) {
        if (is_solve) {
          y_dev.host().assign(n, 0.0);
          const double t = memo.run(
              dev, "spmv@v" + std::to_string(inc.version()), [&] {
                return launcher->run(inc.row_begin(), inc.row_end(),
                                     inc.col_idx(), inc.vals(),
                                     x_dev.cspan(), y_dev.span());
              });
          ts.push_back(t);
          ys.push_back(y_dev.host());
        } else {
          acsr::graph::UpdateParams up;
          up.seed = rng.next_u64() ^ ++update_seq;  // rng NOT shared: see below
          acsr::graph::UpdateBatch<double> batch =
              acsr::graph::generate_update(current, up);
          acsr::graph::apply_update_host(current, batch);
          inc.apply_update(batch);
          launcher = make_launcher();  // re-bin after a structural change
        }
      }
      acsr::vgpu::memo::set_memo_enabled(false);
      acsr::vgpu::memo::MemoCache::instance().clear();
      return std::make_pair(std::move(ts), std::move(ys));
    };

    // The lambda draws from `rng` for update seeds; fork identical copies
    // so both runs generate identical batches.
    Rng saved = rng;
    const auto off = run_trace(false);
    rng = saved;
    const auto on = run_trace(true);

    EXPECT_EQ(off.first, on.first) << "simulated durations diverge";
    ASSERT_EQ(off.second.size(), on.second.size());
    for (std::size_t k = 0; k < off.second.size(); ++k)
      EXPECT_EQ(off.second[k], on.second[k])
          << "y diverges at solve " << k;
    if (::testing::Test::HasFailure()) break;
  }
}

// ---------------------------------------------------------------------------
// Out-of-core storage-plane fuzz.

// Random storage-fault plans against budget-constrained streamed solves.
// Three sub-oracles per case:
//
//   1. faulted: an OocCsrEngine under a random `read`-site plan either
//      recovers to within 1e-9 of an in-core csr-vector run (the tier's
//      retry/checksum machinery absorbed the faults) or escapes as a
//      typed IoError with drive attribution — never a crash, never a
//      silent wrong vector;
//   2. memoized: a fault-free 3-iteration streamed solve sequence is
//      bit-identical (results and durations) with ACSR_MEMO off and on;
//   3. transition: on a device too small for any in-core format, a
//      memoized ResilientEngine must land on ooc-csr and still match the
//      memo-off run bitwise — the fallback rebuild invalidates the
//      displaced format's memo entries instead of replaying them.
TEST(DifferentialFuzz, OutOfCoreStorageFaultsMatchInCore) {
  const std::uint64_t seed = env_u64("ACSR_FUZZ_SEED", 2014);
  const std::size_t n_cases =
      static_cast<std::size_t>(env_u64("ACSR_OOC_FUZZ", 40));
  using acsr::core::OocCsrEngine;
  using acsr::core::OocOptions;
  using acsr::core::ResilientEngine;
  using acsr::vgpu::FaultInjector;

  static const char* const kIoClauses[] = {
      "io_transient@read", "io_timeout@read", "io_checksum@read",
      "io_degrade@read"};

  const Rng root(seed ^ 0x00c517);
  std::size_t recovered = 0;
  std::size_t typed_escapes = 0;
  for (std::size_t i = 0; i < n_cases; ++i) {
    Rng rng = root.split(i + 1);
    acsr::graph::PowerLawSpec s;
    s.rows = 16 + static_cast<index_t>(rng.next_below(200));
    s.cols = s.rows;
    s.mean_nnz_per_row = rng.next_double(1.0, 8.0);
    s.alpha = 1.6;
    s.max_row_nnz = std::max<offset_t>(1, s.rows / 2);
    s.seed = rng.next_u64();
    Csr<double> a = acsr::graph::powerlaw_matrix(s);
    for (auto& v : a.vals) v = rng.next_double(0.5, 1.5);
    std::vector<double> x(static_cast<std::size_t>(a.cols));
    for (auto& v : x) v = rng.next_double(0.5, 1.5);

    std::string plan;
    const int n_clauses = 1 + static_cast<int>(rng.next_below(2));
    for (int c = 0; c < n_clauses; ++c) {
      if (c > 0) plan += ';';
      const std::size_t k = rng.next_below(std::size(kIoClauses));
      plan += kIoClauses[k];
      plan += '#' + std::to_string(1 + rng.next_below(6));
      if (rng.next_bool(0.4))
        plan += '*' + std::to_string(1 + rng.next_below(8));
      if (k == 1) plan += ":ms=" + std::to_string(1 + rng.next_below(30));
      if (k == 2)
        plan += ":seed=" + std::to_string(1 + rng.next_below(1000));
      if (k == 3) plan += ":x=" + std::to_string(2 + rng.next_below(7));
    }
    OocOptions opt;
    opt.budget_bytes = std::size_t{4096} << rng.next_below(4);
    SCOPED_TRACE("case #" + std::to_string(i) + " plan '" + plan +
                 "' budget " + std::to_string(opt.budget_bytes) + " seed " +
                 std::to_string(seed));

    // In-core oracle, injection off.
    std::vector<double> want;
    {
      Device clean(DeviceSpec::gtx_titan());
      const auto oracle = make_engine<double>("csr-vector", clean, a);
      oracle->simulate(x, want);
    }

    // 1. Faulted streamed solve: 1e-9 against in-core, or typed IoError.
    FaultInjector::instance().configure(plan);
    {
      Device dev(DeviceSpec::gtx_titan());
      OocCsrEngine<double> engine(dev, a, opt);
      std::vector<double> y;
      try {
        engine.simulate(x, y);
        ASSERT_EQ(y.size(), want.size());
        for (std::size_t r = 0; r < want.size(); ++r)
          EXPECT_NEAR(y[r], want[r], 1e-9) << "row " << r;
        ++recovered;
      } catch (const acsr::vgpu::IoError& e) {
        EXPECT_FALSE(e.device().empty());
        ++typed_escapes;
      }
    }
    FaultInjector::instance().disable();

    // 2. Memo differential on the clean streamed path: 3 iterations,
    // replay from iteration 2 on, observationally indistinguishable.
    auto streamed_trace = [&](bool memo) {
      acsr::vgpu::memo::set_memo_enabled(memo);
      Device dev(DeviceSpec::gtx_titan());
      EngineConfig cfg;
      cfg.ooc.budget_bytes = opt.budget_bytes;
      const auto engine = make_engine<double>("ooc-csr", dev, a, cfg);
      std::vector<double> ts;
      std::vector<std::vector<double>> ys;
      for (int it = 0; it < 3; ++it) {
        std::vector<double> y;
        ts.push_back(engine->simulate(x, y));
        ys.push_back(std::move(y));
      }
      acsr::vgpu::memo::set_memo_enabled(false);
      acsr::vgpu::memo::MemoCache::instance().clear();
      return std::make_pair(std::move(ts), std::move(ys));
    };
    const auto off = streamed_trace(false);
    const auto on = streamed_trace(true);
    EXPECT_EQ(off.first, on.first) << "streamed durations diverge under memo";
    EXPECT_EQ(off.second, on.second) << "streamed results diverge under memo";

    // 3. Occasionally: natural-OOM fallback with the memo plane on. The
    // csr-vector rung is built (and possibly captured) first; its OOM
    // rebuild must invalidate those entries, not replay them as ooc-csr.
    // Needs a matrix whose half-footprint arena still holds the streamed
    // working set (two floor-sized slabs + staged x), so it gets its own
    // denser draw instead of reusing `a`.
    if (rng.next_bool(0.25)) {
      acsr::graph::PowerLawSpec fs;
      fs.rows = 384 + static_cast<index_t>(rng.next_below(256));
      fs.cols = fs.rows;
      fs.mean_nnz_per_row = 8.0;
      fs.alpha = 1.6;
      fs.max_row_nnz = fs.rows / 2;
      fs.seed = rng.next_u64();
      Csr<double> fa = acsr::graph::powerlaw_matrix(fs);
      for (auto& v : fa.vals) v = rng.next_double(0.5, 1.5);
      std::vector<double> fx(static_cast<std::size_t>(fa.cols));
      for (auto& v : fx) v = rng.next_double(0.5, 1.5);
      const std::size_t cap =
          (static_cast<std::size_t>(fa.rows) + 1) * sizeof(offset_t) +
          static_cast<std::size_t>(fa.nnz()) *
              (sizeof(index_t) + sizeof(double));
      auto fallback_trace = [&](bool memo) {
        acsr::vgpu::memo::set_memo_enabled(memo);
        Device dev(DeviceSpec::gtx_titan());
        dev.set_memory_capacity(cap / 2);
        ResilientEngine<double> engine({&dev}, fa, "csr-vector");
        EXPECT_EQ(engine.active_format(), "ooc-csr");
        std::vector<std::vector<double>> ys;
        for (int it = 0; it < 2; ++it) {
          std::vector<double> y;
          engine.simulate(fx, y);
          ys.push_back(std::move(y));
        }
        acsr::vgpu::memo::set_memo_enabled(false);
        acsr::vgpu::memo::MemoCache::instance().clear();
        return ys;
      };
      EXPECT_EQ(fallback_trace(false), fallback_trace(true))
          << "fallback results diverge under memo";
    }
    if (::testing::Test::HasFailure()) break;
  }
  FaultInjector::instance().disable();

  EXPECT_GT(recovered, 0u);  // the plans must not all be fatal
  std::cout << "[ooc-fuzz] " << n_cases << " plans, " << recovered
            << " recovered within 1e-9, " << typed_escapes
            << " typed escapes (seed " << seed << ")\n";
}

}  // namespace
