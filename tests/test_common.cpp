// Utility-layer tests: PRNG determinism and stream splitting, streaming
// statistics, the log2 histogram (shared with ACSR binning), table
// rendering, and the CLI parser.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using namespace acsr;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  Rng root(7);
  Rng s1 = root.split(1);
  Rng s2 = root.split(2);
  Rng s1_again = root.split(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  EXPECT_NE(s1.next_u64(), s2.next_u64());
  // Splitting must not perturb the parent stream.
  Rng fresh(7);
  fresh.split(1);
  Rng fresh2(7);
  EXPECT_EQ(fresh.next_u64(), fresh2.next_u64());
}

TEST(Rng, UniformRangesRespected) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    ASSERT_LT(r.next_below(17), 17u);
    const double x = r.next_double(2.0, 5.0);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 5.0);
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, BoolProbabilityRoughlyHolds) {
  Rng r(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(heads, 2500, 200);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-sigma example
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Log2Histogram, FrequenciesSumToOne) {
  Log2Histogram h;
  for (std::uint64_t v : {1ull, 1ull, 2ull, 3ull, 9ull, 1000ull}) h.add(v);
  double total = 0;
  for (std::size_t b = 0; b < h.num_buckets(); ++b) total += h.frequency(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(h.count(1), 3u);  // 1,1,2
  EXPECT_EQ(h.count(2), 1u);  // 3
  EXPECT_EQ(h.count(4), 1u);  // 9
  EXPECT_EQ(h.total(), 6u);
}

TEST(GeoMean, MatchesHandComputation) {
  GeoMean g;
  g.add(2.0);
  g.add(8.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  EXPECT_EQ(g.count(), 2u);
  GeoMean empty;
  EXPECT_EQ(empty.value(), 0.0);
}

TEST(Table, RendersAlignedCells) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer |    22 |"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-12), "-12");
}

TEST(Cli, ParsesFlagsAndDefaults) {
  const char* argv[] = {"prog", "--device=k10", "--scale=16", "--verbose",
                        "--ratio=2.5"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_or("device", "titan"), "k10");
  EXPECT_EQ(cli.get_int("scale", 64), 16);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 1.0), 2.5);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("absent"));
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv)), InputError);
}

TEST(Check, MacrosThrowTypedErrors) {
  EXPECT_THROW([] { ACSR_CHECK(1 == 2); }(), InvariantError);
  EXPECT_THROW([] { ACSR_REQUIRE(false, "bad input " << 42); }(),
               InputError);
  EXPECT_NO_THROW([] { ACSR_CHECK(true); }());
  try {
    ACSR_REQUIRE(false, "value " << 42);
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("value 42"), std::string::npos);
  }
}

}  // namespace
