// The simulated storage plane (src/storage/, docs/OOC.md): drive service
// model, RAID-0 stripe mapper, and the fault-tolerant StorageTier. The
// invariants the out-of-core executor depends on are each pinned here:
// reads deliver exact bytes (data plane) while charging stripe-rounded
// drive time (time plane), striped reads proceed in parallel across
// drives, the async window is bounded and retires oldest-first, and
// every ACSR_FAULTS `read` class either recovers within the retry budget
// (with backoff charged to the clock and io.* evidence) or escapes as
// its typed IoError.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"

#include "prof/metrics.hpp"
#include "storage/drive.hpp"
#include "storage/mapper.hpp"
#include "storage/tier.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/timeline.hpp"

namespace {

using acsr::storage::DriveSpec;
using acsr::storage::Extent;
using acsr::storage::Segment;
using acsr::storage::StorageTier;
using acsr::storage::StripeMapper;
using acsr::storage::TierConfig;
using acsr::vgpu::FaultInjector;
using acsr::vgpu::StreamTimeline;

/// Every test leaves the injector disabled, whatever path it exits by.
class Storage : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().disable(); }
};

/// A recognisable byte pattern the delivery checks can diff against.
std::vector<double> pattern(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 0.25 + static_cast<double>(i) * 0.5;
  return v;
}

/// One-segment read request over the whole of `src` into `dst`.
std::vector<Segment> whole(const std::vector<double>& src,
                           std::vector<double>& dst) {
  dst.assign(src.size(), 0.0);
  return {acsr::storage::make_segment(src, 0, dst, src.size())};
}

// --- drive model -----------------------------------------------------------

TEST_F(Storage, DriveServiceIsSeekPlusIopsPlusBandwidth) {
  DriveSpec d;
  d.bandwidth_gbs = 0.5;
  d.iops = 100000.0;
  d.seek_s = 50e-6;
  const std::size_t bytes = 1 << 20;
  const double want = 50e-6 + 1.0 / 100000.0 +
                      static_cast<double>(bytes) / (0.5 * 1e9);
  EXPECT_DOUBLE_EQ(d.service_seconds(bytes), want);
  // Monotone in size: a bigger read can never be cheaper.
  EXPECT_GT(d.service_seconds(2 * bytes), d.service_seconds(bytes));
}

// --- stripe mapper ---------------------------------------------------------

TEST_F(Storage, MapperRoundsToStripesAndRoundRobins) {
  StripeMapper m(4, 1024);
  // A 1-byte read still costs a whole stripe on one drive.
  auto e = m.map(0, 1);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].drive, 0);
  EXPECT_EQ(e[0].stripes, 1u);
  EXPECT_EQ(e[0].bytes, 1024u);

  // A read crossing a stripe boundary touches the next drive round-robin.
  e = m.map(1000, 100);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0].drive, 0);
  EXPECT_EQ(e[1].drive, 1);

  // Eight full stripes across four drives: two each, in first-touch order.
  e = m.map(0, 8 * 1024);
  ASSERT_EQ(e.size(), 4u);
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(e[static_cast<std::size_t>(d)].drive, d);
    EXPECT_EQ(e[static_cast<std::size_t>(d)].stripes, 2u);
  }

  // An offset deep in the stripe sequence lands on offset/stripe % drives.
  e = m.map(5 * 1024, 10);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].drive, 1);
}

TEST_F(Storage, MapperRejectsDegenerateGeometry) {
  EXPECT_THROW(StripeMapper(0, 1024), acsr::InputError);
  EXPECT_THROW(StripeMapper(-2, 1024), acsr::InputError);
  EXPECT_THROW(StripeMapper(4, 0), acsr::InputError);
}

TEST_F(Storage, SegmentHelperChecksRangesAndDropsEmpty) {
  const std::vector<double> src = pattern(8);
  std::vector<double> dst(8, 0.0);
  const Segment s = acsr::storage::make_segment(src, 2, dst, 4);
  EXPECT_EQ(s.bytes, 4 * sizeof(double));
  EXPECT_EQ(acsr::storage::make_segment(src, 0, dst, 0).bytes, 0u);
  EXPECT_THROW(acsr::storage::make_segment(src, 6, dst, 4),
               acsr::InputError);
}

// --- tier: clean path ------------------------------------------------------

TEST_F(Storage, ReadDeliversExactBytesAndAccounts) {
  StreamTimeline tl;
  StorageTier tier(tl, TierConfig{});
  const std::vector<double> src = pattern(1000);
  std::vector<double> dst;
  const double done = tier.read_chunk("chunk0", 0, whole(src, dst));
  EXPECT_GT(done, 0.0);
  EXPECT_EQ(dst, src);  // the data plane is exact
  const acsr::prof::IoAgg& s = tier.stats();
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.demand_bytes, src.size() * sizeof(double));
  // Stripe rounding: delivered drive bytes >= demanded logical bytes.
  EXPECT_GE(s.read_bytes, s.demand_bytes);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.checksum_failures, 0u);
  EXPECT_GT(s.read_s, 0.0);
}

TEST_F(Storage, StripedReadRunsDrivesInParallel) {
  // One chunk spanning many stripes on 4 drives must finish in roughly
  // 1/4 the serial drive time: completion is the max over drive streams,
  // while read_s accumulates the work sum.
  TierConfig cfg;
  cfg.stripe_bytes = 4096;
  StreamTimeline tl;
  StorageTier tier(tl, cfg);
  const std::vector<double> src = pattern(32 * 4096 / sizeof(double));
  std::vector<double> dst;
  const double done = tier.read_chunk("wide", 0, whole(src, dst));
  const double work = tier.stats().read_s;
  EXPECT_LT(done, work);          // parallel: span < work
  EXPECT_GT(done, work / 4.001);  // but no better than 4-way
  EXPECT_EQ(dst, src);
}

TEST_F(Storage, InflightWindowIsBoundedAndRetiresOldestFirst) {
  TierConfig cfg;
  cfg.max_inflight = 3;
  StreamTimeline tl;
  StorageTier tier(tl, cfg);
  const std::vector<double> src = pattern(256);
  std::vector<std::vector<double>> dst(8);
  std::vector<int> completed;
  for (int i = 0; i < 8; ++i) {
    StorageTier::ReadRequest r;
    r.what = "req" + std::to_string(i);
    r.offset = static_cast<std::size_t>(i) * 64;
    r.segments = whole(src, dst[static_cast<std::size_t>(i)]);
    r.on_complete = [&completed, i](double) { completed.push_back(i); };
    tier.submit(std::move(r));
    EXPECT_LE(tier.inflight(), cfg.max_inflight);
  }
  EXPECT_LE(tier.stats().queue_peak, cfg.max_inflight);
  tier.drain();
  EXPECT_EQ(tier.inflight(), 0u);
  // Queue pressure + drain retired every request, in submission order.
  ASSERT_EQ(completed.size(), 8u);
  EXPECT_TRUE(std::is_sorted(completed.begin(), completed.end()));
  for (const auto& d : dst) EXPECT_EQ(d, src);
}

// --- fault plane: grammar --------------------------------------------------

TEST_F(Storage, IoPlanGrammarParses) {
  auto& inj = FaultInjector::instance();
  inj.configure(
      "io_transient@read#2*3;io_timeout@read#1:ms=20;"
      "io_checksum@read#4:seed=9;io_degrade@read#1:x=8");
  ASSERT_EQ(inj.plan().size(), 4u);
  EXPECT_EQ(inj.plan()[0].at, 2);
  EXPECT_EQ(inj.plan()[0].count, 3);
  EXPECT_DOUBLE_EQ(inj.plan()[1].stall_s, 0.020);
  EXPECT_EQ(inj.plan()[2].seed, 9u);
  EXPECT_DOUBLE_EQ(inj.plan()[3].factor, 8.0);
}

TEST_F(Storage, IoPlanGrammarRejectsGarbage) {
  auto& inj = FaultInjector::instance();
  // io kinds only make sense at the read site, and x= must be positive.
  EXPECT_THROW(inj.configure("io_transient@launch#1"), acsr::InputError);
  EXPECT_THROW(inj.configure("oom@read#1"), acsr::InputError);
  EXPECT_THROW(inj.configure("io_degrade@read#1:x=0"), acsr::InputError);
  EXPECT_THROW(inj.configure("io_degrade@read#1:x=-2"), acsr::InputError);
  EXPECT_FALSE(acsr::vgpu::fault_injection_enabled());
}

// --- fault plane: each class, recovered and escaped ------------------------

TEST_F(Storage, TransientReadRetriesWithBackoffAndDelivers) {
  FaultInjector::instance().configure("io_transient@read#1");
  StreamTimeline tl;
  StorageTier tier(tl, TierConfig{});
  const std::vector<double> src = pattern(500);
  std::vector<double> dst;
  tier.read_chunk("slab0", 0, whole(src, dst));
  EXPECT_EQ(dst, src);  // the re-issue delivered the real bytes
  const acsr::prof::IoAgg& s = tier.stats();
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.reads, 2u);          // failed attempt + clean re-issue
  EXPECT_GT(s.penalty_s, 0.0);     // backoff charged to the clock
  const auto& ev = FaultInjector::instance().events();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].site, "read");
  EXPECT_EQ(ev[0].kind, acsr::vgpu::FaultKind::kIoTransient);
}

TEST_F(Storage, PersistentTransientEscapesTyped) {
  FaultInjector::instance().configure("io_transient@read#1*100");
  StreamTimeline tl;
  StorageTier tier(tl, TierConfig{});
  const std::vector<double> src = pattern(100);
  std::vector<double> dst;
  EXPECT_THROW(tier.read_chunk("slab0", 0, whole(src, dst)),
               acsr::vgpu::IoTransientError);
  // max_retries re-issues on top of the first attempt, all faulted.
  EXPECT_EQ(tier.stats().retries,
            static_cast<std::uint64_t>(TierConfig{}.max_retries));
}

TEST_F(Storage, TimeoutChargesHangThenRecovers) {
  FaultInjector::instance().configure("io_timeout@read#1:ms=20");
  StreamTimeline tl;
  StorageTier tier(tl, TierConfig{});
  const std::vector<double> src = pattern(100);
  std::vector<double> dst;
  const double done = tier.read_chunk("slab0", 0, whole(src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_GE(tier.stats().penalty_s, 0.020);  // the hang is simulated time
  EXPECT_GE(done, 0.020);
}

TEST_F(Storage, PersistentTimeoutEscapesTyped) {
  FaultInjector::instance().configure("io_timeout@read#1*100:ms=5");
  StreamTimeline tl;
  StorageTier tier(tl, TierConfig{});
  const std::vector<double> src = pattern(100);
  std::vector<double> dst;
  EXPECT_THROW(tier.read_chunk("slab0", 0, whole(src, dst)),
               acsr::vgpu::IoTimeout);
}

TEST_F(Storage, ChecksumCatchesCorruptDeliveryAndRereads) {
  FaultInjector::instance().configure("io_checksum@read#1:seed=5");
  StreamTimeline tl;
  StorageTier tier(tl, TierConfig{});
  const std::vector<double> src = pattern(400);
  std::vector<double> dst;
  tier.read_chunk("slab0", 0, whole(src, dst));
  // The arrival checksum caught the flip; the re-read delivered truth.
  EXPECT_EQ(dst, src);
  EXPECT_EQ(tier.stats().checksum_failures, 1u);
  EXPECT_EQ(tier.stats().retries, 1u);
}

TEST_F(Storage, PersistentCorruptionEscapesTyped) {
  FaultInjector::instance().configure("io_checksum@read#1*100:seed=11");
  StreamTimeline tl;
  StorageTier tier(tl, TierConfig{});
  const std::vector<double> src = pattern(100);
  std::vector<double> dst;
  EXPECT_THROW(tier.read_chunk("slab0", 0, whole(src, dst)),
               acsr::vgpu::ChunkChecksumMismatch);
  EXPECT_EQ(tier.stats().checksum_failures,
            static_cast<std::uint64_t>(TierConfig{}.max_retries) + 1);
}

TEST_F(Storage, DegradedDriveScalesServiceTime) {
  const std::vector<double> src = pattern(64 * 1024 / sizeof(double));
  std::vector<double> dst;

  StreamTimeline clean_tl;
  StorageTier clean(clean_tl, TierConfig{});
  clean.read_chunk("slab0", 0, whole(src, dst));
  const double clean_s = clean.stats().read_s;

  FaultInjector::instance().configure("io_degrade@read#1:x=4");
  StreamTimeline slow_tl;
  StorageTier slow(slow_tl, TierConfig{});
  const double done = slow.read_chunk("slab0", 0, whole(src, dst));
  EXPECT_EQ(dst, src);  // degraded, not wrong
  EXPECT_DOUBLE_EQ(slow.stats().read_s, clean_s * 4.0);
  EXPECT_GT(done, 0.0);
  EXPECT_EQ(slow.stats().retries, 0u);  // slow is not an error
}

TEST_F(Storage, DerivedIoMetricsComputeFromAgg) {
  StreamTimeline tl;
  TierConfig cfg;
  cfg.stripe_bytes = 4096;
  StorageTier tier(tl, cfg);
  const std::vector<double> src = pattern(1000);  // 8000 B: 2 stripes
  std::vector<double> dst;
  tier.read_chunk("slab0", 0, whole(src, dst));
  const acsr::prof::IoAgg& s = tier.stats();
  bool saw_amp = false;
  for (const auto& m : acsr::prof::io_metric_registry()) {
    const double v = m.compute(s);
    if (std::string(m.name) == "io.read_amplification") {
      saw_amp = true;
      // 8000 B demanded, 2 stripes (8192 B) served.
      EXPECT_NEAR(v, 8192.0 / 8000.0, 1e-12);
    }
    if (std::string(m.name) == "io.retry_rate") {
      EXPECT_DOUBLE_EQ(v, 0.0);
    }
  }
  EXPECT_TRUE(saw_amp);
}

}  // namespace
