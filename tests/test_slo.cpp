// The request-tracing + SLO plane (src/slo/, docs/SLO.md): fixed-bucket
// histogram determinism, the RequestQueue's contractual FIFO tie-break
// and typed overload payload, span-tree well-formedness over the serving
// stack, the charge-parity acceptance property (per-track span charges
// bitwise equal to the StreamTimeline's per-stream charges, under
// injected io + transient faults), burn-rate breach edge-triggering, and
// the objectives-document parser behind `acsr_slo --check`.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "apps/rwr_batch.hpp"
#include "core/factory.hpp"
#include "core/ooc_engine.hpp"
#include "core/resilient.hpp"
#include "graph/powerlaw.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "slo/histogram.hpp"
#include "slo/slo.hpp"
#include "slo/trace.hpp"
#include "vgpu/device.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/memo.hpp"

namespace {

using acsr::core::EngineConfig;
using acsr::core::make_engine;
using acsr::core::OocCsrEngine;
using acsr::core::OocOptions;
using acsr::core::ResilientEngine;
using acsr::mat::Csr;
using acsr::mat::index_t;
using acsr::serve::BatchScheduler;
using acsr::serve::OverloadError;
using acsr::serve::Request;
using acsr::serve::RequestQueue;
using acsr::serve::ServeOptions;
using acsr::slo::BreachEvent;
using acsr::slo::LatencyHistogram;
using acsr::slo::SloMonitor;
using acsr::slo::SloObjective;
using acsr::slo::Span;
using acsr::slo::SpanKind;
using acsr::slo::Tracer;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceSpec;
using acsr::vgpu::FaultInjector;

/// Every test leaves the slo plane, the tracer, the fault injector and
/// the memo plane as it found them.
class Slo : public ::testing::Test {
 protected:
  void SetUp() override {
    memo_was_ = acsr::vgpu::memo::memo_enabled();
    slo_was_ = acsr::slo::slo_enabled();
    Tracer::instance().clear();
  }
  void TearDown() override {
    FaultInjector::instance().disable();
    acsr::vgpu::memo::set_memo_enabled(memo_was_);
    acsr::slo::set_slo_enabled(slo_was_);
    Tracer::instance().clear();
    acsr::vgpu::memo::MemoCache::instance().clear();
  }

 private:
  bool memo_was_ = false;
  bool slo_was_ = false;
};

Csr<double> test_matrix(index_t n = 256) {
  acsr::graph::PowerLawSpec s;
  s.rows = n;
  s.cols = n;
  s.mean_nnz_per_row = 6.0;
  s.alpha = 1.6;
  s.max_row_nnz = n / 2;
  s.seed = 7;
  Csr<double> m = acsr::graph::powerlaw_matrix(s);
  for (auto& v : m.vals) v = 0.5 + v * 0.25;
  return m;
}

// --- histogram -------------------------------------------------------------

TEST_F(Slo, HistogramBucketLayout) {
  // under + 9 decades x 9 linear + over.
  EXPECT_EQ(LatencyHistogram::kBuckets, 83);
  EXPECT_EQ(LatencyHistogram::bucket_of(0.0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(9.9e-8), 0);   // underflow
  EXPECT_EQ(LatencyHistogram::bucket_of(1e-7), 1);     // first real bucket
  EXPECT_EQ(LatencyHistogram::bucket_of(1e3), 82);     // overflow
  // bucket_of is monotone non-decreasing and every value sits strictly
  // below its bucket's reported upper bound (except under/overflow).
  int prev = 0;
  for (double v = 0.0; v < 150.0; v = v == 0.0 ? 1e-8 : v * 1.37) {
    const int b = LatencyHistogram::bucket_of(v);
    EXPECT_GE(b, prev) << "v=" << v;
    prev = b;
    if (b > 0 && b < LatencyHistogram::kBuckets - 1) {
      EXPECT_LT(v, LatencyHistogram::bucket_upper(b)) << "v=" << v;
    }
  }
  // Exact decade boundaries: 2e-7 is the second linear split of decade 0.
  EXPECT_EQ(LatencyHistogram::bucket_of(2e-7), 2);
  EXPECT_EQ(LatencyHistogram::bucket_upper(1), 2e-7);
  EXPECT_EQ(LatencyHistogram::bucket_of(1e-6), 10);  // decade 1 starts
}

TEST_F(Slo, HistogramQuantilesAreDeterministicOverestimates) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.add(1e-3 * i);  // 1ms .. 100ms
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max(), 0.1);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-12);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  // Quantiles are bucket upper bounds: ordered, and never below the true
  // order statistic they summarise.
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 0.050);
  EXPECT_GE(p95, 0.095);
  // q = 1 reports the exact tracked maximum, not a bucket bound.
  EXPECT_EQ(h.quantile(1.0), 0.1);
  // Same stream -> bitwise-equal histogram (operator== covers buckets,
  // count, sum and max).
  LatencyHistogram h2;
  for (int i = 1; i <= 100; ++i) h2.add(1e-3 * i);
  EXPECT_TRUE(h == h2);
  h2.add(5.0);
  EXPECT_FALSE(h == h2);
}

TEST_F(Slo, HistogramOverflowQuantileReportsExactMax) {
  LatencyHistogram h;
  h.add(250.0);  // above the 1e2 s ceiling
  h.add(0.5);
  EXPECT_EQ(LatencyHistogram::bucket_of(250.0), LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(h.quantile(1.0), 250.0);
  EXPECT_EQ(h.max(), 250.0);
}

// --- request queue ---------------------------------------------------------

TEST_F(Slo, OverloadErrorCarriesQueueState) {
  RequestQueue<double> q(2);
  Request<double> a;
  a.x = {1.0};
  a.tenant = "alpha";
  a.deadline_s = 7.5;
  Request<double> b = a;
  b.tenant = "beta";
  b.deadline_s = 3.25;
  q.push(std::move(a), 0.0);
  q.push(std::move(b), 0.0);
  Request<double> c;
  c.x = {1.0};
  c.tenant = "gamma";
  try {
    q.push(std::move(c), 1.0);
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.queue_depth(), 2u);
    EXPECT_EQ(e.oldest_deadline_s(), 3.25);
    EXPECT_NE(std::string(e.what()).find("gamma"), std::string::npos);
  }
  // A backlog with no deadlines reports +inf (bulk traffic signal).
  RequestQueue<double> q2(1);
  Request<double> d;
  d.x = {1.0};
  q2.push(std::move(d), 0.0);
  try {
    Request<double> e2;
    e2.x = {1.0};
    q2.push(std::move(e2), 0.0);
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_TRUE(std::isinf(e.oldest_deadline_s()));
    EXPECT_GT(e.oldest_deadline_s(), 0.0);
  }
}

TEST_F(Slo, PopBestBreaksTiesFifoByAdmissionId) {
  // Equal priority, equal deadline: pop order must be admission order —
  // the contractual FIFO of docs/SLO.md (ids are strictly increasing).
  RequestQueue<double> q(8);
  for (int i = 0; i < 5; ++i) {
    Request<double> r;
    r.x = {static_cast<double>(i)};
    r.tenant = "t" + std::to_string(i);
    q.push(std::move(r), 0.0);
  }
  std::uint64_t prev = 0;
  for (int i = 0; i < 5; ++i) {
    const Request<double> r = q.pop_best();
    EXPECT_GT(r.id, prev) << "FIFO tie-break violated at pop " << i;
    prev = r.id;
  }
  // Priority still dominates, deadline still breaks priority ties.
  Request<double> lo, hi, urgent;
  lo.x = hi.x = urgent.x = {1.0};
  lo.priority = 0;
  hi.priority = 1;
  urgent.priority = 0;
  urgent.deadline_s = 0.5;
  q.push(std::move(lo), 0.0);
  q.push(std::move(urgent), 0.0);
  q.push(std::move(hi), 0.0);
  EXPECT_EQ(q.pop_best().priority, 1);
  EXPECT_EQ(q.pop_best().deadline_s, 0.5);
  EXPECT_TRUE(std::isinf(q.pop_best().deadline_s));
}

// --- slo monitor -----------------------------------------------------------

TEST_F(Slo, BreachIsEdgeTriggeredAndReArms) {
  SloMonitor m;
  SloObjective o;
  o.tenant = "alpha";
  o.latency_target_s = 1e-3;
  o.error_budget = 0.5;
  o.window = 4;
  o.burn_threshold = 1.0;
  m.set_objective(o);
  int fired = 0;
  m.on_breach = [&](const BreachEvent& ev) {
    ++fired;
    EXPECT_EQ(ev.tenant, "alpha");
    EXPECT_GE(ev.burn_rate, 1.0);
    EXPECT_EQ(ev.target_s, 1e-3);
  };

  std::uint64_t id = 1;
  auto fast = [&] { m.observe("alpha", id++, 0.0, 1e-4, 1.0); };
  auto slow = [&] { m.observe("alpha", id++, 0.0, 5e-3, 1.0); };

  fast();
  fast();
  slow();  // window violations 1/3 -> burn 0.67, below threshold
  EXPECT_TRUE(m.breaches().empty());
  slow();  // 2/4 -> burn 1.0: the edge
  ASSERT_EQ(m.breaches().size(), 1u);
  EXPECT_EQ(fired, 1);
  slow();  // 3/4: still in breach, latched — no second event
  slow();  // 4/4
  EXPECT_EQ(m.breaches().size(), 1u);
  // Recover: fast requests push violations out of the window...
  fast();
  fast();
  fast();  // window {slow, fast, fast, fast} -> burn 0.5, re-armed
  EXPECT_EQ(m.breaches().size(), 1u);
  // ...and a fresh burst crosses the threshold again: second edge.
  slow();
  slow();
  ASSERT_EQ(m.breaches().size(), 2u);
  EXPECT_EQ(fired, 2);

  const acsr::prof::SloAgg agg = m.snapshot("alpha");
  EXPECT_EQ(agg.requests, static_cast<std::uint64_t>(id - 1));
  EXPECT_EQ(agg.violations, 6u);
  EXPECT_EQ(agg.breaches, 2u);
  EXPECT_GT(agg.latency_p50_s, 0.0);
  EXPECT_EQ(agg.latency_max_s, 5e-3);
  // The "*" aggregate sees the same single-tenant stream.
  const acsr::prof::SloAgg all = m.snapshot("*");
  EXPECT_EQ(all.requests, agg.requests);
  EXPECT_EQ(all.breaches, agg.breaches);
  EXPECT_EQ(m.tenant_names(), std::vector<std::string>{"alpha"});

  const BreachEvent& ev = m.breaches().front();
  const std::string d = ev.describe();
  EXPECT_NE(d.find("slo:breach tenant 'alpha'"), std::string::npos);
  EXPECT_NE(d.find("burn"), std::string::npos);
}

TEST_F(Slo, ParseObjectivesRoundTripsAndRejectsMalformedDocs) {
  const std::string doc = R"({"objectives": [
    {"tenant": "*", "latency_target_s": 0.25, "error_budget": 0.2},
    {"tenant": "alpha", "latency_target_s": 0.001,
     "window": 8, "burn_threshold": 2.0}]})";
  const std::vector<SloObjective> objs = acsr::slo::parse_objectives(doc);
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[0].tenant, "*");
  EXPECT_EQ(objs[0].latency_target_s, 0.25);
  EXPECT_EQ(objs[0].error_budget, 0.2);
  EXPECT_EQ(objs[0].window, 64u);  // default kept
  EXPECT_EQ(objs[1].tenant, "alpha");
  EXPECT_EQ(objs[1].window, 8u);
  EXPECT_EQ(objs[1].burn_threshold, 2.0);
  EXPECT_THROW(acsr::slo::parse_objectives("not json"), acsr::InputError);
  EXPECT_THROW(acsr::slo::parse_objectives("{\"objectives\": 3}"),
               acsr::InputError);
  EXPECT_THROW(
      acsr::slo::parse_objectives(R"({"objectives": [{"tenant": 7}]})"),
      acsr::InputError);
}

// --- span trees ------------------------------------------------------------

/// Index spans by id for parent lookups.
std::map<std::uint64_t, const Span*> by_id(const std::vector<Span>& spans) {
  std::map<std::uint64_t, const Span*> m;
  for (const Span& s : spans) m.emplace(s.id, &s);
  return m;
}

TEST_F(Slo, SpanTreesAreWellFormed) {
  acsr::slo::set_slo_enabled(true);
  acsr::vgpu::memo::set_memo_enabled(false);
  const Csr<double> a = test_matrix();
  Device dev(DeviceSpec::gtx_titan());
  OocOptions opt;
  opt.budget_bytes = 8 * 1024;  // several slabs -> real upload/compute spans
  OocCsrEngine<double> engine(dev, a, opt);
  ASSERT_GE(engine.num_slabs(), 3u);

  ServeOptions sopt;
  sopt.max_batch_width = 4;
  BatchScheduler<double> sched(engine, sopt);
  acsr::apps::run_tenant_scenario(sched, a.cols, 4);  // 16 requests
  ASSERT_EQ(sched.served_requests(), 16u);

  const std::vector<Span>& spans = Tracer::instance().spans();
  const auto idx = by_id(spans);

  // One kRequest root per served request; kQueueWait + kServe tile it on
  // the request's own track.
  std::map<std::uint64_t, const Span*> roots;
  for (const Span& s : spans)
    if (s.kind == SpanKind::kRequest) {
      EXPECT_EQ(s.parent, 0u);
      EXPECT_TRUE(roots.emplace(s.request, &s).second)
          << "duplicate root for request " << s.request;
      EXPECT_EQ(s.track, "req:" + s.tenant + "#" + std::to_string(s.request));
    }
  EXPECT_EQ(roots.size(), 16u);
  for (const Span& s : spans) {
    if (s.kind != SpanKind::kQueueWait && s.kind != SpanKind::kServe) continue;
    auto it = roots.find(s.request);
    ASSERT_NE(it, roots.end());
    const Span& root = *it->second;
    EXPECT_EQ(s.parent, root.id);
    EXPECT_EQ(s.track, root.track);
    if (s.kind == SpanKind::kQueueWait) {
      EXPECT_EQ(s.start_s, root.start_s);
    } else {
      EXPECT_EQ(s.end_s, root.end_s);
    }
  }
  for (const auto& [req, root] : roots) {
    const Span* wait = nullptr;
    const Span* serve = nullptr;
    for (const Span& s : spans) {
      if (s.request != req) continue;
      if (s.kind == SpanKind::kQueueWait) wait = &s;
      if (s.kind == SpanKind::kServe) serve = &s;
    }
    ASSERT_NE(wait, nullptr);
    ASSERT_NE(serve, nullptr);
    // The tiling: wait ends exactly where serve starts (the batch launch).
    EXPECT_EQ(wait->end_s, serve->start_s);
    EXPECT_EQ(wait->duration() + serve->duration(), root->duration());
  }

  // Batch spans sit on the "serve" track, ordered and non-overlapping
  // (the scheduler clock advances only by the batches it runs).
  std::vector<const Span*> batches;
  for (const Span& s : spans)
    if (s.kind == SpanKind::kBatch) {
      EXPECT_EQ(s.track, "serve");
      EXPECT_EQ(s.parent, 0u);
      batches.push_back(&s);
    }
  ASSERT_EQ(batches.size(), sched.batches());
  for (std::size_t i = 1; i < batches.size(); ++i)
    EXPECT_GE(batches[i]->start_s, batches[i - 1]->end_s);

  // Execution spans nest under a batch, and a batch's child compute time
  // never exceeds the batch's own duration (compute is a subset of the
  // makespan the scheduler was billed).
  std::map<std::uint64_t, double> child_compute;
  for (const Span& s : spans) {
    if (s.kind != SpanKind::kUpload && s.kind != SpanKind::kCompute &&
        s.kind != SpanKind::kIo && s.kind != SpanKind::kRetryBackoff)
      continue;
    auto it = idx.find(s.parent);
    ASSERT_NE(it, idx.end()) << "orphan execution span " << s.name;
    EXPECT_EQ(it->second->kind, SpanKind::kBatch);
    if (s.kind == SpanKind::kCompute) child_compute[s.parent] += s.duration();
  }
  EXPECT_FALSE(child_compute.empty());
  for (const auto& [batch_id, compute_s] : child_compute) {
    const Span& parent = *idx.at(batch_id);
    EXPECT_LE(compute_s, parent.duration() * (1.0 + 1e-9) + 1e-12)
        << "child compute exceeds batch " << parent.name;
  }

  // Sibling spans on one track never overlap.
  std::map<std::string, std::vector<const Span*>> tracks;
  for (const Span& s : spans) tracks[s.track].push_back(&s);
  for (auto& [track, list] : tracks) {
    std::sort(list.begin(), list.end(), [](const Span* x, const Span* y) {
      return x->start_s < y->start_s;
    });
    for (std::size_t i = 1; i < list.size(); ++i) {
      // Parents contain their children by design; only compare siblings.
      if (list[i]->parent != list[i - 1]->parent) continue;
      EXPECT_GE(list[i]->start_s, list[i - 1]->end_s)
          << "overlap on track " << track;
    }
  }

  // The per-kind histograms the SLO plane summarises count one entry per
  // span of the kind.
  EXPECT_EQ(Tracer::instance().kind_histogram(SpanKind::kRequest).count(),
            16u);
  EXPECT_EQ(Tracer::instance().kind_histogram(SpanKind::kBatch).count(),
            sched.batches());
}

// --- charge parity under faults (the acceptance criterion) -----------------

TEST_F(Slo, FaultedSpanChargesEqualTimelineChargesBitwise) {
  acsr::slo::set_slo_enabled(true);
  acsr::vgpu::memo::set_memo_enabled(false);  // active_engine() is the OOC rung
  // An io fault exercises the tier's retry/backoff spans; a transient
  // launch fault aborts one OOC attempt mid-flight so the parity has to
  // cover an abandoned private timeline (retain-on-abort).
  FaultInjector::instance().configure("io_transient@read#2*3;transient@launch#4");

  const Csr<double> a = test_matrix();
  Device dev(DeviceSpec::gtx_titan());
  EngineConfig cfg;
  cfg.ooc.budget_bytes = 8 * 1024;
  ResilientEngine<double> engine({&dev}, a, "ooc-csr", cfg);

  ServeOptions sopt;
  sopt.max_batch_width = 4;
  BatchScheduler<double> sched(engine, sopt);
  // A deliberately unmeetable objective wires breaches into the recovery
  // log, the acsr_slo CLI's breach sink.
  SloObjective o;
  o.latency_target_s = 1e-9;
  o.error_budget = 0.25;
  o.window = 4;
  sched.slo().set_objective(o);
  sched.slo().on_breach = [&](const BreachEvent& ev) {
    engine.note_event(ev.describe());
  };
  acsr::apps::run_tenant_scenario(sched, a.cols, 2);  // 8 requests

  // The transient launch fault was hit and retried.
  EXPECT_GE(engine.retries(), 1);

  auto* ooc = dynamic_cast<OocCsrEngine<double>*>(&engine.active_engine());
  ASSERT_NE(ooc, nullptr);
  const auto& log = ooc->trace_timeline_log();
  ASSERT_FALSE(log.empty());

  // Stream -> track: the tier creates one stream per drive first, then
  // the engine adds h2d and compute (tier.hpp / ooc_engine.hpp order).
  const int drives = cfg.ooc.tier.num_drives;
  auto track_of = [&](int stream) {
    if (stream < drives)
      return cfg.ooc.tier.drive.name + std::to_string(stream);
    return std::string(stream == drives ? "h2d" : "compute");
  };
  std::map<std::string, double> log_charge;
  std::map<std::string, std::size_t> log_entries;
  for (const acsr::vgpu::StreamTimeline::LogEntry& e : log) {
    const std::string track = track_of(static_cast<int>(e.stream));
    log_charge[track] += e.end_s - e.start_s;
    log_entries[track] += 1;
  }
  ASSERT_GE(log_charge.size(), 3u);  // drives + h2d + compute all worked

  std::map<std::string, double> span_charge;
  std::map<std::string, std::size_t> span_entries;
  for (const Span& s : Tracer::instance().spans()) {
    if (log_charge.count(s.track) == 0) continue;  // serve/req/recovery
    span_charge[s.track] += s.duration();
    span_entries[s.track] += 1;
  }
  // Charge parity, bitwise: every mirrored span copied its enqueue's
  // interval exactly, in the same order — the sums are identical doubles,
  // not merely close (docs/SLO.md; the slo-span-parity audit plane states
  // the same contract abstractly).
  EXPECT_EQ(span_entries.size(), log_entries.size());
  for (const auto& [track, charge] : log_charge) {
    EXPECT_EQ(span_entries[track], log_entries[track]) << "track " << track;
    EXPECT_EQ(span_charge[track], charge) << "track " << track;
    EXPECT_EQ(Tracer::instance().track_charge(track), charge)
        << "track " << track;
  }

  // The tree crosses >= 3 planes: serve (batch), engine (upload/compute),
  // storage (drive io), with the retry backoff charged somewhere.
  bool has_batch = false, has_engine = false, has_io = false, has_retry = false;
  for (const Span& s : Tracer::instance().spans()) {
    has_batch |= s.kind == SpanKind::kBatch;
    has_engine |= s.kind == SpanKind::kUpload || s.kind == SpanKind::kCompute;
    has_io |= s.kind == SpanKind::kIo;
    has_retry |= s.kind == SpanKind::kRetryBackoff;
  }
  EXPECT_TRUE(has_batch);
  EXPECT_TRUE(has_engine);
  EXPECT_TRUE(has_io);
  EXPECT_TRUE(has_retry);

  // Breaches reached the recovery plane's event stream.
  ASSERT_FALSE(sched.slo().breaches().empty());
  bool noted = false;
  for (const auto& e : engine.timeline().log())
    noted |= e.tag.find("slo:breach") != std::string::npos;
  EXPECT_TRUE(noted);
}

// --- determinism across runs and executor planes ---------------------------

struct RunFingerprint {
  LatencyHistogram request, queue_wait, serve, batch;
  acsr::prof::SloAgg agg;
};

RunFingerprint traced_scenario_fingerprint(const Csr<double>& a) {
  Tracer::instance().clear();
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>("acsr", dev, a);
  ServeOptions sopt;
  sopt.max_batch_width = 8;
  BatchScheduler<double> sched(*engine, sopt);
  acsr::apps::run_tenant_scenario(sched, a.cols, 4);
  RunFingerprint f;
  f.request = Tracer::instance().kind_histogram(SpanKind::kRequest);
  f.queue_wait = Tracer::instance().kind_histogram(SpanKind::kQueueWait);
  f.serve = Tracer::instance().kind_histogram(SpanKind::kServe);
  f.batch = Tracer::instance().kind_histogram(SpanKind::kBatch);
  f.agg = sched.slo().snapshot("*");
  return f;
}

void expect_same_fingerprint(const RunFingerprint& x, const RunFingerprint& y,
                             const char* what) {
  EXPECT_TRUE(x.request == y.request) << what;
  EXPECT_TRUE(x.queue_wait == y.queue_wait) << what;
  EXPECT_TRUE(x.serve == y.serve) << what;
  EXPECT_TRUE(x.batch == y.batch) << what;
  EXPECT_EQ(x.agg.requests, y.agg.requests) << what;
  EXPECT_EQ(x.agg.violations, y.agg.violations) << what;
  EXPECT_EQ(x.agg.latency_p50_s, y.agg.latency_p50_s) << what;
  EXPECT_EQ(x.agg.latency_p99_s, y.agg.latency_p99_s) << what;
  EXPECT_EQ(x.agg.latency_max_s, y.agg.latency_max_s) << what;
  EXPECT_EQ(x.agg.queue_wait_p95_s, y.agg.queue_wait_p95_s) << what;
}

TEST_F(Slo, HistogramsAreRunAndMemoInvariant) {
  acsr::slo::set_slo_enabled(true);
  const Csr<double> a = test_matrix();

  acsr::vgpu::memo::set_memo_enabled(false);
  const RunFingerprint plain1 = traced_scenario_fingerprint(a);
  const RunFingerprint plain2 = traced_scenario_fingerprint(a);
  expect_same_fingerprint(plain1, plain2, "identical runs");

  // The memo plane replays metering bit-identically, so every latency
  // percentile the SLO plane reports is identical under ACSR_MEMO=0/1 —
  // cold (capture) and warm (replay) alike.
  acsr::vgpu::memo::set_memo_enabled(true);
  acsr::vgpu::memo::MemoCache::instance().clear();
  const RunFingerprint cold = traced_scenario_fingerprint(a);
  const RunFingerprint warm = traced_scenario_fingerprint(a);
  expect_same_fingerprint(plain1, cold, "memo off vs capture");
  expect_same_fingerprint(plain1, warm, "memo off vs replay");
}

TEST_F(Slo, ObserveSloFeedsMonitorWithoutSpans) {
  // bench_wallclock's path: percentiles without paying for span storage.
  acsr::slo::set_slo_enabled(false);
  const Csr<double> a = test_matrix();
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>("csr", dev, a);
  ServeOptions sopt;
  sopt.observe_slo = true;
  BatchScheduler<double> sched(*engine, sopt);
  acsr::apps::run_tenant_scenario(sched, a.cols, 2);
  const acsr::prof::SloAgg agg = sched.slo().snapshot("*");
  EXPECT_EQ(agg.requests, sched.served_requests());
  EXPECT_GT(agg.latency_p50_s, 0.0);
  EXPECT_TRUE(Tracer::instance().spans().empty());
}

}  // namespace
