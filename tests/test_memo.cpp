// Unit tests for the launch-metering memo layer (src/vgpu/memo.hpp).
//
// Cache-key semantics: repeated key-identical executions hit; device-spec
// differences, launch-geometry differences and structure-version bumps
// (incremental_csr updates) miss; value-only changes hit and the value
// plane is recomputed (replay re-runs the kernels value-only). Owner
// teardown erases the owner's entries, which is how the resilient
// driver's scrub/fallback/failover paths — all of which rebuild the
// engine through make_engine — guarantee stale metering is never
// replayed. The fault plane bypasses memoization outright.
//
// The bit-identity of replayed metering across all engines is pinned
// separately by tests/test_metering_invariance.cpp (fifth mode).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/factory.hpp"
#include "core/incremental_csr.hpp"
#include "core/resilient.hpp"
#include "graph/dynamic.hpp"
#include "graph/powerlaw.hpp"
#include "vgpu/device.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/memo.hpp"

namespace {

using acsr::core::EngineConfig;
using acsr::core::IncrementalCsr;
using acsr::core::make_engine;
using acsr::core::ResilientEngine;
using acsr::mat::Csr;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceSpec;
using acsr::vgpu::FaultInjector;
using acsr::vgpu::KernelRun;
using acsr::vgpu::memo::MemoCache;
using acsr::vgpu::memo::Memoizer;
using acsr::vgpu::memo::spec_fingerprint;

/// RAII: enable the memo plane with a clean cache, restore a clean
/// disabled state on exit (tests must not leak global mode).
struct MemoGuard {
  MemoGuard() {
    MemoCache::instance().clear();
    MemoCache::instance().reset_stats();
    acsr::vgpu::memo::set_memo_enabled(true);
  }
  ~MemoGuard() {
    acsr::vgpu::memo::set_memo_enabled(false);
    MemoCache::instance().clear();
    MemoCache::instance().reset_stats();
  }
};

Csr<double> powerlaw(int rows, double mu, std::uint64_t seed) {
  acsr::graph::PowerLawSpec s;
  s.rows = rows;
  s.cols = rows;
  s.mean_nnz_per_row = mu;
  s.alpha = 1.6;
  s.max_row_nnz = rows / 2;
  s.seed = seed;
  Csr<double> m = acsr::graph::powerlaw_matrix(s);
  acsr::Rng rng(seed ^ 0x5eed);
  for (auto& v : m.vals) v = rng.next_double(0.5, 1.5);
  return m;
}

std::vector<double> random_x(std::size_t n, std::uint64_t seed) {
  acsr::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.next_double(0.5, 1.5);
  return x;
}

// ---------------------------------------------------------------------------
// Key material.

TEST(MemoKey, SpecFingerprintSeparatesDevices) {
  const DeviceSpec titan = DeviceSpec::gtx_titan();
  const DeviceSpec k10 = DeviceSpec::tesla_k10();
  EXPECT_EQ(spec_fingerprint(titan), spec_fingerprint(DeviceSpec::gtx_titan()));
  EXPECT_NE(spec_fingerprint(titan), spec_fingerprint(k10));
  EXPECT_NE(spec_fingerprint(titan), spec_fingerprint(DeviceSpec::gtx580()));

  // Any model-relevant parameter must flip the key: a cached entry from a
  // differently-clocked (or differently-plumbed) device would replay wrong
  // roofline terms.
  DeviceSpec tweaked = titan;
  tweaked.clock_ghz *= 1.5;
  EXPECT_NE(spec_fingerprint(titan), spec_fingerprint(tweaked));
  tweaked = titan;
  tweaked.dram_bandwidth_gbs += 1.0;
  EXPECT_NE(spec_fingerprint(titan), spec_fingerprint(tweaked));
  tweaked = titan;
  tweaked.sm_count += 1;
  EXPECT_NE(spec_fingerprint(titan), spec_fingerprint(tweaked));
}

// A tiny copy kernel whose grid is a parameter — the raw-Memoizer probe
// used by the key/geometry tests below.
double launch_copy(Device& dev, acsr::vgpu::DeviceSpan<const double> src,
                   acsr::vgpu::DeviceSpan<double> dst, long long grid) {
  acsr::vgpu::LaunchConfig cfg;
  cfg.name = "memo_probe";
  cfg.block_dim = 64;
  cfg.grid_dim = grid;
  const long long n = static_cast<long long>(src.size());
  const KernelRun run = dev.launch_warps(cfg, [&](acsr::vgpu::Warp& w) {
    const auto idx = w.global_threads();
    const acsr::vgpu::Mask m =
        idx.where([n](long long i) { return i < n; }, w.active_mask());
    if (m == 0) return;
    const auto v = w.load(src, idx, m);
    w.store(dst, idx, v, m);
  });
  return run.duration_s;
}

TEST(MemoKey, GridConfigMissesValueChangesHit) {
  MemoGuard guard;
  Device dev(DeviceSpec::gtx_titan());
  auto src = dev.alloc<double>(256, "src");
  auto dst = dev.alloc<double>(256, "dst");
  for (std::size_t i = 0; i < 256; ++i)
    src.host()[i] = static_cast<double>(i);

  Memoizer memo(spec_fingerprint(dev.spec()) + "|probe");
  auto run_grid = [&](long long grid) {
    // Launch geometry is key material: callers fold it into the subkey
    // (replay additionally validates it against the captured record).
    return memo.run(dev, "g" + std::to_string(grid), [&] {
      return launch_copy(dev, src.cspan(), dst.span(), grid);
    });
  };

  const double t4 = run_grid(4);  // miss: capture
  EXPECT_EQ(MemoCache::instance().stats().misses, 1u);
  EXPECT_EQ(MemoCache::instance().stats().hits, 0u);
  EXPECT_EQ(dst.host()[255], 255.0);

  const double t4_replay = run_grid(4);  // hit: replay
  EXPECT_EQ(MemoCache::instance().stats().hits, 1u);
  EXPECT_EQ(t4_replay, t4);

  run_grid(2);  // different geometry: its own entry
  EXPECT_EQ(MemoCache::instance().stats().misses, 2u);
  EXPECT_EQ(MemoCache::instance().size(), 2u);

  // Value-only change: same key hits, and the replayed (value-only)
  // kernels recompute the value plane from the new input.
  for (std::size_t i = 0; i < 256; ++i)
    src.host()[i] = static_cast<double>(i) * 3.0;
  const double t4_again = run_grid(4);
  EXPECT_EQ(MemoCache::instance().stats().hits, 2u);
  EXPECT_EQ(t4_again, t4);
  EXPECT_EQ(dst.host()[100], 300.0);
}

TEST(MemoKey, ReplayValidatesLaunchGeometry) {
  MemoGuard guard;
  Device dev(DeviceSpec::gtx_titan());
  auto src = dev.alloc<double>(128, "src");
  src.host().assign(128, 1.0);
  auto dst = dev.alloc<double>(128, "dst");

  Memoizer memo(spec_fingerprint(dev.spec()) + "|probe");
  memo.run(dev, "fixed", [&] {
    return launch_copy(dev, src.cspan(), dst.span(), 2);
  });
  // A caller that fails the subkey discipline — same key, different
  // geometry — must be rejected loudly, never silently replay the wrong
  // metering.
  EXPECT_THROW(memo.run(dev, "fixed",
                        [&] {
                          return launch_copy(dev, src.cspan(), dst.span(), 4);
                        }),
               acsr::InvariantError);
}

TEST(MemoKey, OwnerTeardownErasesItsEntries) {
  MemoGuard guard;
  Device dev(DeviceSpec::gtx_titan());
  auto src = dev.alloc<double>(64, "src");
  src.host().assign(64, 2.0);
  auto dst = dev.alloc<double>(64, "dst");
  {
    Memoizer memo(spec_fingerprint(dev.spec()) + "|probe");
    memo.run(dev, "spmv", [&] {
      return launch_copy(dev, src.cspan(), dst.span(), 1);
    });
    EXPECT_EQ(MemoCache::instance().size(), 1u);
  }
  // The Memoizer died with its owner: its entries are gone, and a
  // successor instance starts cold even with an identical tag prefix.
  EXPECT_EQ(MemoCache::instance().size(), 0u);
  EXPECT_GE(MemoCache::instance().stats().invalidations, 1u);
}

// ---------------------------------------------------------------------------
// Structure-version invalidation (dynamic graphs).

TEST(MemoInvalidation, StructureVersionBumpsOnUpdateAndMisses) {
  MemoGuard guard;
  Device dev(DeviceSpec::gtx_titan());
  Csr<double> truth = powerlaw(200, 5.0, 17);
  IncrementalCsr<double> inc(dev, truth);
  EXPECT_EQ(inc.version(), 0u);

  auto src = dev.alloc<double>(64, "src");
  src.host().assign(64, 1.0);
  auto dst = dev.alloc<double>(64, "dst");
  Memoizer memo(spec_fingerprint(dev.spec()) + "|dyn");
  auto run_versioned = [&] {
    // The dynamic path's subkey folds in the structure version, so a
    // batch update invalidates by key drift (the stale entry is dead
    // weight until the owner tears down).
    return memo.run(dev, "spmv@v" + std::to_string(inc.version()), [&] {
      return launch_copy(dev, src.cspan(), dst.span(), 1);
    });
  };

  run_versioned();  // v0: capture
  run_versioned();  // v0: hit
  EXPECT_EQ(MemoCache::instance().stats().hits, 1u);

  acsr::graph::UpdateParams p;
  p.seed = 99;
  const auto batch = acsr::graph::generate_update(truth, p);
  acsr::graph::apply_update_host(truth, batch);
  inc.apply_update(batch);
  EXPECT_EQ(inc.version(), 1u);

  run_versioned();  // v1: the bumped version misses
  EXPECT_EQ(MemoCache::instance().stats().misses, 2u);
  EXPECT_EQ(MemoCache::instance().stats().hits, 1u);

  inc.apply_update(batch);  // every batch bumps, even a re-applied one
  EXPECT_EQ(inc.version(), 2u);
}

// ---------------------------------------------------------------------------
// Engine-level behaviour (the make_engine wrapper).

TEST(MemoEngine, RepeatSimulateReplaysBitIdentical) {
  const Csr<double> a = powerlaw(300, 6.0, 23);
  const auto x1 = random_x(static_cast<std::size_t>(a.cols), 101);
  const auto x2 = random_x(static_cast<std::size_t>(a.cols), 202);

  // Memo-off baseline: same engine instance, two simulates.
  std::vector<double> y1_off, y2_off;
  double t1_off = 0.0, t2_off = 0.0;
  {
    Device dev(DeviceSpec::gtx_titan());
    auto engine = make_engine<double>("acsr", dev, a);
    t1_off = engine->simulate(x1, y1_off);
    t2_off = engine->simulate(x2, y2_off);
  }
  EXPECT_EQ(t1_off, t2_off);  // metering is iteration-stationary

  MemoGuard guard;
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>("acsr", dev, a);
  std::vector<double> y1, y2;
  const double t1 = engine->simulate(x1, y1);  // capture
  const double t2 = engine->simulate(x2, y2);  // replay
  EXPECT_EQ(MemoCache::instance().stats().misses, 1u);
  EXPECT_EQ(MemoCache::instance().stats().hits, 1u);
  EXPECT_EQ(t1, t1_off);
  EXPECT_EQ(t2, t2_off);
  EXPECT_EQ(y1, y1_off);
  EXPECT_EQ(y2, y2_off);  // replayed value plane: bit-identical result
}

TEST(MemoEngine, DisabledPlaneTouchesNoCache) {
  MemoCache::instance().clear();
  MemoCache::instance().reset_stats();
  acsr::vgpu::memo::set_memo_enabled(false);

  const Csr<double> a = powerlaw(150, 4.0, 31);
  const auto x = random_x(static_cast<std::size_t>(a.cols), 7);
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>("csr-vector", dev, a);
  std::vector<double> y;
  engine->simulate(x, y);
  engine->simulate(x, y);
  const auto& st = MemoCache::instance().stats();
  EXPECT_EQ(st.hits + st.misses + st.bypasses, 0u);
  EXPECT_EQ(MemoCache::instance().size(), 0u);
}

// ---------------------------------------------------------------------------
// Fault plane: recovery must never replay stale metering.

TEST(MemoFaultPlane, InjectionBypassesAndRecoveryStartsCold) {
  MemoGuard guard;
  const Csr<double> a = powerlaw(250, 5.0, 41);
  const auto x = random_x(static_cast<std::size_t>(a.cols), 11);
  std::vector<double> y_truth;
  a.spmv(x, y_truth);

  Device dev(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&dev}, a, "csr-vector");
  std::vector<double> y;

  engine.simulate(x, y);  // capture
  engine.simulate(x, y);  // replay
  EXPECT_EQ(MemoCache::instance().stats().misses, 1u);
  EXPECT_EQ(MemoCache::instance().stats().hits, 1u);
  const std::size_t entries_before = MemoCache::instance().size();
  EXPECT_GE(entries_before, 1u);

  // A detected ECC flip: the driver scrubs (rebuild through make_engine),
  // which destroys the captured engine's Memoizer and with it every entry
  // it owned. While injection is live the memo plane is bypassed outright,
  // so the recovery run neither replays nor captures.
  FaultInjector::instance().configure("ecc@launch#1");
  engine.simulate(x, y);
  FaultInjector::instance().disable();
  EXPECT_EQ(engine.scrubs(), 1);
  EXPECT_GE(MemoCache::instance().stats().bypasses, 1u);
  EXPECT_GE(MemoCache::instance().stats().invalidations, entries_before);
  EXPECT_EQ(MemoCache::instance().size(), 0u);  // stale metering is gone
  for (std::size_t r = 0; r < y.size(); ++r)
    EXPECT_NEAR(y[r], y_truth[r], 1e-9) << "row " << r;

  // Post-recovery: the rebuilt engine starts cold — a fresh capture, not
  // a stale hit.
  engine.simulate(x, y);
  EXPECT_EQ(MemoCache::instance().stats().misses, 2u);
  EXPECT_EQ(MemoCache::instance().stats().hits, 1u);

  // An application-triggered scrub (solver guards call it directly, no
  // injector involved) invalidates the same way.
  engine.scrub();
  EXPECT_EQ(MemoCache::instance().size(), 0u);
  engine.simulate(x, y);
  EXPECT_EQ(MemoCache::instance().stats().misses, 3u);
  for (std::size_t r = 0; r < y.size(); ++r)
    EXPECT_NEAR(y[r], y_truth[r], 1e-9) << "row " << r;
}

}  // namespace
