// The audit tier (docs/ANALYSIS.md): event-graph charge/causality
// domain, token-level source passes, the seeded defect corpora
// (zero-false-negative pins), and the real-tree proofs the CI gate
// relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/audit_passes.hpp"
#include "analysis/charge_models.hpp"
#include "analysis/event_graph.hpp"
#include "analysis/models.hpp"
#include "analysis/source_model.hpp"
#include "common/json.hpp"
#include "core/engine_registry.hpp"
#include "vgpu/device_spec.hpp"

#ifndef ACSR_SOURCE_DIR
#define ACSR_SOURCE_DIR "."
#endif

namespace {

using namespace acsr;
using analysis::AuditFinding;
using analysis::AuditKind;

bool has_kind(const std::vector<AuditFinding>& fs, AuditKind k) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const AuditFinding& f) { return f.kind == k; });
}

// --- ChargeGraph domain ------------------------------------------------

TEST(ChargeGraph, CleanPipelineHasNoFindings) {
  analysis::ChargeGraph g;
  const auto h2d = g.stream("h2d");
  const auto compute = g.stream("compute");
  g.declare_work("upload", "x upload");
  g.charge(h2d, "upload");
  g.record(h2d, "up");
  g.wait(compute, "up");
  g.declare_work("spmv", "the kernel");
  g.charge(compute, "spmv");
  EXPECT_TRUE(g.audit("t").empty());
}

TEST(ChargeGraph, FreeWorkAndDoubleChargeAreParityViolations) {
  analysis::ChargeGraph g;
  const auto s = g.stream("s");
  g.declare_work("never", "uncharged work");
  g.declare_work("twice", "double-charged work");
  g.charge(s, "twice");
  g.charge(s, "twice");
  const auto fs = g.audit("t");
  EXPECT_TRUE(has_kind(fs, AuditKind::kFreeWork));
  EXPECT_TRUE(has_kind(fs, AuditKind::kDoubleCharge));
}

TEST(ChargeGraph, WaitBeforeRecordIsInversionWaitNeverRecordedIsDangling) {
  analysis::ChargeGraph g;
  const auto a = g.stream("a");
  const auto b = g.stream("b");
  g.wait(b, "done");  // recorded only later: inversion
  g.declare_work("w", "w");
  g.charge(a, "w");
  g.record(a, "done");
  g.wait(b, "nobody");  // never recorded: dangling
  const auto fs = g.audit("t");
  EXPECT_TRUE(has_kind(fs, AuditKind::kCausalityInversion));
  EXPECT_TRUE(has_kind(fs, AuditKind::kDanglingWait));
}

TEST(ChargeGraph, UnprovenNegativeChargeIsNonMonotone) {
  analysis::ChargeGraph g;
  const auto s = g.stream("s");
  g.declare_work("w", "w");
  g.charge(s, "w", /*nonneg=*/false);
  EXPECT_TRUE(has_kind(g.audit("t"), AuditKind::kNonMonotone));
}

// --- the engine x device matrix ---------------------------------------

TEST(ChargeMatrix, EveryRegistryEngineOnEveryDeviceIsClean) {
  int cells = 0;
  for (const std::string& e : core::factory_engine_names())
    for (const std::string& d : analysis::audit_device_keys()) {
      const auto spec = vgpu::DeviceSpec::by_name(d);
      const auto fs = analysis::audit_engine_charges(e, spec);
      EXPECT_TRUE(fs.empty()) << e << "@" << d << ": " << fs.front().str();
      ++cells;
    }
  EXPECT_EQ(cells, 16 * 3);
}

TEST(ChargeMatrix, AliasResolvesAndUnknownEngineThrows) {
  const auto spec = vgpu::DeviceSpec::by_name("titan");
  EXPECT_TRUE(analysis::audit_engine_charges("csr-cusparse", spec).empty());
  EXPECT_THROW(analysis::audit_engine_charges("no-such-engine", spec),
               acsr::InputError);
}

TEST(ChargeMatrix, CrossPlaneJoinsAreClean) {
  for (const std::string& p : analysis::charge_plane_names()) {
    const auto fs = analysis::audit_charge_plane(p);
    EXPECT_TRUE(fs.empty()) << p << ": " << fs.front().str();
  }
}

// The satellite fix: the verifier matrix is derived from the factory
// registry, so a factory engine without a verifier model (or vice versa)
// fails here instead of being silently skipped.
TEST(ChargeMatrix, VerifierAndAuditMatricesDeriveFromFactoryRegistry) {
  EXPECT_EQ(analysis::all_engine_names(), core::factory_engine_names());
  for (const std::string& e : core::factory_engine_names()) {
    EXPECT_TRUE(analysis::knows_engine(e)) << e;
    EXPECT_NE(core::canonical_engine_name(e), nullptr) << e;
  }
  EXPECT_STREQ(core::canonical_engine_name("csr-cusparse"), "csr");
  EXPECT_EQ(core::canonical_engine_name("bogus"), nullptr);
}

// --- defect corpora: zero false negatives ------------------------------

TEST(DefectCorpus, EveryChargeDefectIsFlaggedWithItsExpectedKind) {
  for (const auto& d : analysis::all_charge_defects()) {
    const auto fs = analysis::run_charge_defect(d.name);
    EXPECT_TRUE(has_kind(fs, d.expected)) << d.name;
  }
}

TEST(DefectCorpus, EverySourceDefectIsFlaggedWithItsExpectedKind) {
  for (const auto& d : analysis::all_source_defects()) {
    const auto fs = analysis::run_source_defect(d.name);
    EXPECT_TRUE(has_kind(fs, d.expected)) << d.name;
  }
}

// --- lexer + scope model ----------------------------------------------

TEST(SourceModel, CommentsStringsAndCodeAreSeparated) {
  const auto f = analysis::lex_source("src/x/t.hpp",
                                      "#pragma once\n"
                                      "// v.data() in a comment\n"
                                      "const char* s = \"x.data()\";\n"
                                      "/* .data() in a block comment */\n"
                                      "int n = 1'000; char c = 'a';\n");
  int comments = 0, strings = 0, directives = 0;
  for (const auto& t : f.toks) {
    comments += t.kind == analysis::TokKind::kComment;
    strings += t.kind == analysis::TokKind::kString;
    directives += t.kind == analysis::TokKind::kDirective;
  }
  EXPECT_EQ(comments, 2);
  EXPECT_EQ(strings, 1);
  EXPECT_EQ(directives, 1);
  // No `.data(` sequence survives into the code stream.
  const analysis::SourceSet set = {f};
  EXPECT_TRUE(analysis::audit_lint(set).empty());
}

TEST(SourceModel, DataEscapeInCodeIsFlaggedOutsideTheSpanLayer) {
  const char* body =
      "#pragma once\n"
      "inline const double* leak(const std::vector<double>& v) {\n"
      "  return v.data();\n"
      "}\n";
  const analysis::SourceSet bad = {analysis::lex_source("src/x/t.hpp", body)};
  EXPECT_TRUE(has_kind(analysis::audit_lint(bad), AuditKind::kLint));
  // The same code inside the span layer is the audited exception.
  const analysis::SourceSet ok = {
      analysis::lex_source("src/vgpu/memory.hpp", body)};
  EXPECT_TRUE(analysis::audit_lint(ok).empty());
}

TEST(SourceModel, ScopeModelFindsFunctionsAndStaticLocals) {
  const auto f = analysis::lex_source(
      "src/x/t.cpp",
      "namespace n {\n"
      "Gadget& Gadget::instance() { static Gadget g; return g; }\n"
      "bool from_env() { return true; }\n"
      "bool g_cached = from_env();\n"
      "}\n");
  const auto m = analysis::build_file_model(f);
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].name, "instance");
  EXPECT_EQ(m.functions[0].qualifier, "Gadget");
  EXPECT_EQ(m.functions[1].name, "from_env");
  ASSERT_EQ(m.static_local_classes.size(), 1u);
  EXPECT_EQ(m.static_local_classes[0], "Gadget");
  EXPECT_TRUE(std::find(m.ns_init_refs.begin(), m.ns_init_refs.end(),
                        "from_env") != m.ns_init_refs.end());
}

TEST(SourceModel, CachedGatePatternsAreAccepted) {
  // All four caching shapes in one synthetic file: ns-scope init,
  // function-local static, singleton ctor, and a reader called from one
  // of those.
  const auto f = analysis::lex_source(
      "src/x/gates.cpp",
      "namespace n {\n"
      "bool flag(const char* name) { return std::getenv(name) != nullptr; }\n"
      "bool a_from_env() { return std::getenv(\"ACSR_A\") != nullptr; }\n"
      "bool g_a = a_from_env();\n"
      "bool b() { static bool v = std::getenv(\"ACSR_B\") != nullptr;"
      " return v; }\n"
      "struct Plane { Plane() { on_ = flag(\"ACSR_C\"); } bool on_; };\n"
      "Plane& inst() { static Plane p; return p; }\n"
      "}\n");
  const auto res = analysis::audit_gates({f});
  EXPECT_EQ(res.sites.size(), 3u);
  for (const auto& s : res.sites) EXPECT_TRUE(s.cached) << s.var << " " << s.how;
  EXPECT_TRUE(res.findings.empty());
}

// --- real-tree proofs --------------------------------------------------

TEST(RealTree, TaxonomyIsExhaustive) {
  const auto set = analysis::load_source_tree(ACSR_SOURCE_DIR);
  const auto res = analysis::audit_taxonomy(set);
  EXPECT_TRUE(res.findings.empty())
      << res.findings.front().str();
  // The typed taxonomy as shipped: both roots and the Io subtree.
  std::vector<std::string> names;
  for (const auto& t : res.types) {
    names.push_back(t.name);
    EXPECT_TRUE(t.covered || t.terminal || t.throw_sites.empty()) << t.name;
  }
  for (const char* expect :
       {"DeviceFault", "DeviceOom", "TransientFault", "DataCorruption",
        "DeviceLost", "IoError", "IoTransientError", "IoTimeout",
        "ChunkChecksumMismatch"})
    EXPECT_TRUE(std::find(names.begin(), names.end(), expect) != names.end())
        << expect;
}

TEST(RealTree, EveryGateIsCached) {
  const auto set = analysis::load_source_tree(ACSR_SOURCE_DIR);
  const auto res = analysis::audit_gates(set);
  EXPECT_TRUE(res.findings.empty()) << res.findings.front().str();
  std::vector<std::string> vars;
  for (const auto& s : res.sites) {
    vars.push_back(s.var);
    EXPECT_TRUE(s.cached) << s.var << " at " << s.file << ":" << s.line;
  }
  // The gates the planes ship today must all be discovered (a lexer
  // regression that finds zero sites would otherwise pass vacuously).
  for (const char* expect :
       {"ACSR_MEMO", "ACSR_VERIFY", "ACSR_FAULTS", "ACSR_SANITIZE",
        "ACSR_REFERENCE_METERING", "ACSR_PROF", "ACSR_TRACE", "ACSR_SCALE"})
    EXPECT_TRUE(std::find(vars.begin(), vars.end(), expect) != vars.end())
        << expect;
}

TEST(RealTree, LintRulesHoldTokenLevel) {
  const auto set = analysis::load_source_tree(ACSR_SOURCE_DIR);
  const auto fs = analysis::audit_lint(set);
  EXPECT_TRUE(fs.empty()) << fs.front().str();
  EXPECT_GT(set.size(), 50u);  // the loader actually walked src/
}

// --- report ------------------------------------------------------------

TEST(AuditReport, ExitCodeAndJsonRoundTrip) {
  analysis::AuditReport rep;
  rep.engine_cells = 48;
  rep.defects_expected = 8;
  rep.defects_flagged = 8;
  EXPECT_EQ(rep.exit_code(), 0);

  rep.findings.push_back({AuditKind::kFreeWork, "charge:t", "w", "detail"});
  EXPECT_EQ(rep.exit_code(), 1);

  std::string err;
  json::Value doc;
  ASSERT_TRUE(json::parse(rep.json(), &doc, &err)) << err;
  const json::Value* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("engine_cells")->as_number(), 48);
  EXPECT_FALSE(summary->find("clean")->as_bool());
  const json::Value* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->as_array().size(), 1u);
  EXPECT_EQ(findings->as_array()[0].find("kind")->as_string(), "free-work");

  rep.findings.clear();
  rep.defects_flagged = 7;  // a missed defect is a failure even with no findings
  EXPECT_EQ(rep.exit_code(), 1);
}

}  // namespace
