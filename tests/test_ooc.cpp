// The out-of-core streaming tier (src/core/ooc_engine.hpp, docs/OOC.md):
// OocCsrEngine's partition-independent numerics, its streamed execution
// (double-buffered slab uploads overlapping compute, io.* evidence), the
// terminal ResilientEngine rung (DeviceOom degrades to out-of-core
// instead of throwing), checkpointed solvers spanning the transition,
// and storage-faulted solves converging to fault-free results.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/cg.hpp"
#include "apps/pagerank.hpp"
#include "core/factory.hpp"
#include "core/ooc_engine.hpp"
#include "core/resilient.hpp"
#include "graph/powerlaw.hpp"
#include "vgpu/device.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/memo.hpp"

namespace {

using acsr::core::EngineConfig;
using acsr::core::make_engine;
using acsr::core::OocCsrEngine;
using acsr::core::OocOptions;
using acsr::core::ResilientEngine;
using acsr::mat::Csr;
using acsr::mat::index_t;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceOom;
using acsr::vgpu::DeviceSpec;
using acsr::vgpu::FaultInjector;

/// Every test leaves the injector and the memo plane as it found them.
class Ooc : public ::testing::Test {
 protected:
  void SetUp() override { memo_was_ = acsr::vgpu::memo::memo_enabled(); }
  void TearDown() override {
    FaultInjector::instance().disable();
    acsr::vgpu::memo::set_memo_enabled(memo_was_);
  }

 private:
  bool memo_was_ = false;
};

Csr<double> test_matrix(index_t n = 256) {
  acsr::graph::PowerLawSpec s;
  s.rows = n;
  s.cols = n;
  s.mean_nnz_per_row = 6.0;
  s.alpha = 1.6;
  s.max_row_nnz = n / 2;
  s.seed = 7;
  Csr<double> m = acsr::graph::powerlaw_matrix(s);
  // Keep every value positive so SpMV sums are cancellation-free.
  for (auto& v : m.vals) v = 0.5 + v * 0.25;
  return m;
}

std::vector<double> ones(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

/// Bytes the in-core CSR formats need for this matrix (their device
/// footprint): shrinking the arena below this makes every in-core build
/// OOM *naturally* — no injection, so the memo plane stays active.
std::size_t csr_device_bytes(const Csr<double>& a) {
  return (static_cast<std::size_t>(a.rows) + 1) * sizeof(acsr::mat::offset_t) +
         static_cast<std::size_t>(a.nnz()) *
             (sizeof(index_t) + sizeof(double));
}

Csr<double> pagerank_test_matrix() {
  acsr::graph::PowerLawSpec s;
  s.rows = 96;
  s.cols = 96;
  s.mean_nnz_per_row = 5.0;
  s.alpha = 1.7;
  s.max_row_nnz = 32;
  s.seed = 11;
  Csr<double> adj = acsr::graph::powerlaw_matrix(s);
  for (auto& v : adj.vals) v = 1.0;
  // Give empty rows a self-loop so the matrix is genuinely row-stochastic.
  acsr::mat::Coo<double> c = adj.to_coo();
  for (index_t r = 0; r < adj.rows; ++r)
    if (adj.row_nnz(r) == 0) c.push(r, r, 1.0);
  return acsr::apps::pagerank_matrix(Csr<double>::from_coo(c));
}

// --- numerics --------------------------------------------------------------

TEST_F(Ooc, SimulateMatchesApplyBitwise) {
  const Csr<double> a = test_matrix();
  Device dev(DeviceSpec::gtx_titan());
  OocOptions opt;
  opt.budget_bytes = 8 * 1024;  // force several slabs
  OocCsrEngine<double> engine(dev, a, opt);
  ASSERT_GE(engine.num_slabs(), 3u);
  const auto x = ones(static_cast<std::size_t>(a.cols));
  std::vector<double> want, got;
  engine.apply(x, want);
  engine.simulate(x, got);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(got[i], want[i]) << "row " << i;
}

TEST_F(Ooc, ResultsIndependentOfBudget) {
  // A row's reduction order depends only on its own length, never on
  // where a slab boundary falls — so every budget gives bitwise-equal y.
  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));
  std::vector<std::size_t> budgets = {8 * 1024, 64 * 1024, 64 << 20};
  std::vector<double> first;
  std::size_t first_slabs = 0;
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    Device dev(DeviceSpec::gtx_titan());
    OocOptions opt;
    opt.budget_bytes = budgets[i];
    OocCsrEngine<double> engine(dev, a, opt);
    std::vector<double> y;
    engine.simulate(x, y);
    if (i == 0) {
      first = y;
      first_slabs = engine.num_slabs();
    } else {
      EXPECT_EQ(y, first) << "budget " << budgets[i];
      EXPECT_LT(engine.num_slabs(), first_slabs);
    }
  }
}

TEST_F(Ooc, MatchesInCoreEngineWithinTolerance) {
  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));

  Device d0(DeviceSpec::gtx_titan());
  auto incore = make_engine<double>("csr-vector", d0, a);
  std::vector<double> want;
  incore->simulate(x, want);

  Device d1(DeviceSpec::gtx_titan());
  OocOptions opt;
  opt.budget_bytes = 16 * 1024;
  OocCsrEngine<double> engine(d1, a, opt);
  std::vector<double> got;
  engine.simulate(x, got);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-9) << "row " << i;
}

TEST_F(Ooc, EmptyRowsAndEmptyMatrixStayZero) {
  Csr<double> a;
  a.rows = 16;
  a.cols = 16;
  a.row_off.assign(17, 0);
  a.validate();
  Device dev(DeviceSpec::gtx_titan());
  OocCsrEngine<double> engine(dev, a);
  const auto x = ones(16);
  std::vector<double> y;
  engine.simulate(x, y);
  EXPECT_EQ(y, std::vector<double>(16, 0.0));
}

// --- streaming evidence ----------------------------------------------------

TEST_F(Ooc, StreamsEverySlabWithOverlapInsideBudget) {
  const Csr<double> a = test_matrix();
  Device dev(DeviceSpec::gtx_titan());
  OocOptions opt;
  opt.budget_bytes = 16 * 1024;
  OocCsrEngine<double> engine(dev, a, opt);
  ASSERT_GE(engine.num_slabs(), 3u);
  // Resident footprint: two slab sets, inside the budget (+ alignment
  // slack for a slab whose last row overshoots the half-budget cap).
  EXPECT_LE(engine.report().device_bytes, opt.budget_bytes + 4096);

  const auto x = ones(static_cast<std::size_t>(a.cols));
  std::vector<double> y;
  const double makespan = engine.simulate(x, y);
  EXPECT_GT(makespan, 0.0);
  EXPECT_EQ(engine.last_makespan(), makespan);

  const acsr::prof::IoAgg& io = engine.io_stats();
  EXPECT_EQ(io.reads, engine.num_slabs());  // one chunk read per slab
  EXPECT_GE(io.read_bytes, io.demand_bytes);
  // The tier exists to hide drive reads behind compute: some pair of
  // streams must have been busy at the same instant (work > span).
  EXPECT_GT(io.overlap_s, 0.0);
  // Derived metric view of the same fact.
  const auto* m = acsr::prof::find_io_metric("io.overlap_efficiency");
  ASSERT_NE(m, nullptr);
  EXPECT_GT(m->compute(io), 0.0);
}

TEST_F(Ooc, FactoryBuildsOocAndHeadroomTracksAllocations) {
  const Csr<double> a = test_matrix(64);
  Device dev(DeviceSpec::gtx_titan());
  const std::size_t before = dev.memory_headroom();
  EXPECT_EQ(before, dev.arena().capacity() - dev.arena().allocated());
  EngineConfig cfg;
  cfg.ooc.budget_bytes = 32 * 1024;
  auto engine = make_engine<double>("ooc-csr", dev, a, cfg);
  EXPECT_EQ(engine->name(), "OOC-CSR");
  const auto x = ones(static_cast<std::size_t>(a.cols));
  std::vector<double> y, want;
  engine->simulate(x, y);
  engine->apply(x, want);
  EXPECT_EQ(y, want);
  // headroom = capacity - allocated, live.
  auto buf = dev.alloc<double>(512, "probe");
  EXPECT_EQ(dev.memory_headroom(), dev.arena().capacity() -
                                       dev.arena().allocated());
  EXPECT_LE(dev.memory_headroom(), before - 512 * sizeof(double));
}

// --- the terminal resilience rung ------------------------------------------

TEST_F(Ooc, BudgetBelowMatrixFootprintStillCompletes) {
  // Large enough that half the CSR footprint still holds the streamed
  // working set (two floor-sized slabs + the staged x).
  const Csr<double> a = test_matrix(1024);
  const std::size_t footprint = csr_device_bytes(a);
  Device dev(DeviceSpec::gtx_titan());
  // Arena smaller than the matrix: no in-core format can even build...
  dev.set_memory_capacity(footprint / 2);
  EXPECT_THROW(make_engine<double>("csr-vector", dev, a), DeviceOom);
  // ...but the streamed tier completes inside the same arena.
  OocCsrEngine<double> engine(dev, a);  // budget = capacity / 8
  EXPECT_LT(engine.budget_bytes(), footprint);
  const auto x = ones(static_cast<std::size_t>(a.cols));
  std::vector<double> got, want;
  engine.simulate(x, got);
  engine.apply(x, want);
  EXPECT_EQ(got, want);
}

TEST_F(Ooc, NaturalOomDegradesToOocWithLogEvidence) {
  const Csr<double> a = test_matrix(1024);
  Device dev(DeviceSpec::gtx_titan());
  dev.set_memory_capacity(csr_device_bytes(a) / 2);
  // No injection: the arena itself refuses csr-vector and csr-scalar,
  // and the chain's terminal rung picks up the solve.
  ResilientEngine<double> engine({&dev}, a, "csr-vector");
  EXPECT_EQ(engine.active_format(), "ooc-csr");
  EXPECT_GE(engine.fallbacks(), 2);
  bool saw_oom = false, saw_ooc = false;
  for (const std::string& tag : engine.recovery_log()) {
    if (tag.find("fault:oom") != std::string::npos) saw_oom = true;
    if (tag.find("recovery:fallback to ooc-csr") != std::string::npos)
      saw_ooc = true;
  }
  EXPECT_TRUE(saw_oom);
  EXPECT_TRUE(saw_ooc);

  const auto x = ones(static_cast<std::size_t>(a.cols));
  std::vector<double> got, want;
  engine.simulate(x, got);
  engine.apply(x, want);  // ooc host path: bitwise target
  EXPECT_EQ(got, want);
}

TEST_F(Ooc, CheckpointedPagerankSpansOocFallback) {
  const Csr<double> m = pagerank_test_matrix();
  acsr::apps::PageRankConfig cfg;
  acsr::apps::CheckpointConfig ck;
  ck.interval = 4;

  FaultInjector::instance().disable();
  Device c0(DeviceSpec::gtx_titan());
  ResilientEngine<double> clean_engine({&c0}, m, "csr-vector");
  const auto want = acsr::apps::pagerank_checkpointed(clean_engine, cfg, ck);
  ASSERT_TRUE(want.converged);

  // Persistent-enough OOM: the striking SpMV's staging alloc and the
  // csr-scalar rebuild both fail, landing the solve on the terminal
  // out-of-core rung mid-run; the solver restarts from its checkpoint
  // and finishes there.
  FaultInjector::instance().configure("oom@alloc#12*2");
  Device d0(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&d0}, m, "csr-vector");
  const auto got = acsr::apps::pagerank_checkpointed(engine, cfg, ck);

  ASSERT_TRUE(got.converged);
  EXPECT_EQ(engine.active_format(), "ooc-csr");
  EXPECT_GE(engine.fallbacks(), 2);
  bool saw_restart = false;
  for (const std::string& tag : engine.recovery_log())
    if (tag.find("recovery:fallback to ooc-csr") != std::string::npos)
      saw_restart = true;
  EXPECT_TRUE(saw_restart);
  ASSERT_EQ(got.scores.size(), want.scores.size());
  for (std::size_t i = 0; i < want.scores.size(); ++i)
    EXPECT_NEAR(got.scores[i], want.scores[i], 1e-9) << "rank " << i;
  EXPECT_GE(got.total_s, want.total_s);
}

TEST_F(Ooc, CheckpointedCgSpansOocFallback) {
  const Csr<double> a = acsr::apps::laplacian_2d<double>(12, 12);
  const std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  acsr::apps::CheckpointConfig ck;
  ck.interval = 8;

  FaultInjector::instance().disable();
  Device c0(DeviceSpec::gtx_titan());
  ResilientEngine<double> clean_engine({&c0}, a, "csr");
  const auto want = acsr::apps::conjugate_gradient_checkpointed(
      clean_engine, b, {}, ck);
  ASSERT_TRUE(want.converged);

  FaultInjector::instance().configure("oom@alloc#10*2");
  Device d0(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&d0}, a, "csr");
  const auto got =
      acsr::apps::conjugate_gradient_checkpointed(engine, b, {}, ck);
  ASSERT_TRUE(got.converged);
  EXPECT_EQ(engine.active_format(), "ooc-csr");
  for (std::size_t i = 0; i < want.x.size(); ++i)
    EXPECT_NEAR(got.x[i], want.x[i], 1e-9) << "x[" << i << "]";
}

// --- storage faults through the full stack ---------------------------------

TEST_F(Ooc, EachStorageFaultClassRecoversBitwise) {
  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));
  const struct {
    const char* plan;
    bool retried;  // transient/checksum re-issue; timeout/degrade may not
  } kCases[] = {
      {"io_transient@read#1", true},
      {"io_timeout@read#1:ms=20", true},
      {"io_checksum@read#2:seed=5", true},
      {"io_degrade@read#1*3:x=4", false},
  };
  for (const auto& c : kCases) {
    FaultInjector::instance().configure(c.plan);
    Device dev(DeviceSpec::gtx_titan());
    OocOptions opt;
    opt.budget_bytes = 16 * 1024;
    OocCsrEngine<double> engine(dev, a, opt);
    std::vector<double> got, want;
    engine.simulate(x, got);
    const auto& ev = FaultInjector::instance().events();
    ASSERT_FALSE(ev.empty()) << "plan " << c.plan << " never fired";
    EXPECT_EQ(ev.front().site, "read");
    if (c.retried) {
      EXPECT_GE(engine.io_stats().retries, 1u) << "plan " << c.plan;
    }
    FaultInjector::instance().disable();
    engine.apply(x, want);  // host path: no storage exposure
    EXPECT_EQ(got, want) << "plan " << c.plan;
  }
}

TEST_F(Ooc, ExhaustedRetryBudgetEscapesTypedThroughResilient) {
  const Csr<double> a = test_matrix(64);
  FaultInjector::instance().configure("io_transient@read#1*1000");
  Device dev(DeviceSpec::gtx_titan());
  // ooc-csr is its own (terminal) chain: nothing below it to degrade to,
  // so the typed storage error must surface, not a crash or wrong y.
  ResilientEngine<double> engine({&dev}, a, "ooc-csr");
  const auto x = ones(static_cast<std::size_t>(a.cols));
  std::vector<double> y;
  EXPECT_THROW(engine.simulate(x, y), acsr::vgpu::IoTransientError);
}

TEST_F(Ooc, CheckpointedPagerankSurvivesStorageFaultStorm) {
  const Csr<double> m = pagerank_test_matrix();
  acsr::apps::PageRankConfig cfg;
  cfg.iter.device_loop = true;
  acsr::apps::CheckpointConfig ck;
  ck.interval = 4;

  FaultInjector::instance().disable();
  Device c0(DeviceSpec::gtx_titan());
  ResilientEngine<double> clean_engine({&c0}, m, "ooc-csr");
  const auto want = acsr::apps::pagerank_checkpointed(clean_engine, cfg, ck);
  ASSERT_TRUE(want.converged);

  // Eight consecutive faulted reads: deeper than one chunk's retry
  // budget, so an IoTransientError escapes to the solver, which restarts
  // from its checkpoint; later reads are clean and the solve completes.
  FaultInjector::instance().configure("io_transient@read#8*8");
  Device d0(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&d0}, m, "ooc-csr");
  const auto got = acsr::apps::pagerank_checkpointed(engine, cfg, ck);
  ASSERT_TRUE(got.converged);
  ASSERT_EQ(got.scores.size(), want.scores.size());
  for (std::size_t i = 0; i < want.scores.size(); ++i)
    EXPECT_NEAR(got.scores[i], want.scores[i], 1e-9) << "rank " << i;
  bool saw_restart = false;
  for (const auto& e : engine.timeline().log())
    if (e.tag.find("restart:") != std::string::npos) saw_restart = true;
  EXPECT_TRUE(saw_restart);
}

// --- memo plane ------------------------------------------------------------

TEST_F(Ooc, MemoReplayMatchesCaptureAndSurvivesFallback) {
  const Csr<double> a = test_matrix();
  acsr::vgpu::memo::set_memo_enabled(true);

  Device dev(DeviceSpec::gtx_titan());
  EngineConfig cfg;
  cfg.ooc.budget_bytes = 16 * 1024;
  auto engine = make_engine<double>("ooc-csr", dev, a, cfg);
  const auto x = ones(static_cast<std::size_t>(a.cols));
  std::vector<double> y1, y2;
  const double t1 = engine->simulate(x, y1);  // capture
  const double t2 = engine->simulate(x, y2);  // replay
  EXPECT_EQ(y1, y2);
  EXPECT_DOUBLE_EQ(t1, t2);

  // Natural OOM inside a memoized resilient stack: the fallback rebuild
  // resets the inner engine, which erases its memo entries — the first
  // ooc-csr solve re-captures instead of replaying a stale csr plan.
  const Csr<double> big = test_matrix(1024);
  const auto xb = ones(static_cast<std::size_t>(big.cols));
  Device small(DeviceSpec::gtx_titan());
  small.set_memory_capacity(csr_device_bytes(big) / 2);
  ResilientEngine<double> resilient({&small}, big, "csr-vector");
  ASSERT_EQ(resilient.active_format(), "ooc-csr");
  std::vector<double> got, want;
  resilient.simulate(xb, got);
  resilient.simulate(xb, want);  // replay of the ooc capture
  EXPECT_EQ(got, want);
  std::vector<double> host;
  resilient.apply(xb, host);
  EXPECT_EQ(got, host);
}

// --- env-driven smoke (scripts/check.sh ooc fault matrix) -------------------

// check.sh runs this once per representative storage plan with ACSR_FAULTS
// set: whatever the plan, a budget-constrained out-of-core solve must
// either recover bit-correct against the host path or surface a typed
// IoError — never crash, never a silent wrong answer.
TEST(OocEnv, StoragePlanFromEnvironmentIsSurvivable) {
  const char* plan = std::getenv("ACSR_FAULTS");
  if (plan == nullptr || plan[0] == '\0')
    GTEST_SKIP() << "ACSR_FAULTS not set";
  ASSERT_TRUE(acsr::vgpu::fault_injection_enabled());

  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));
  Device dev(DeviceSpec::gtx_titan());
  OocOptions opt;
  opt.budget_bytes = 16 * 1024;
  OocCsrEngine<double> engine(dev, a, opt);
  std::vector<double> want;
  engine.apply(x, want);  // host path: no device/storage exposure

  std::vector<double> y;
  try {
    for (int i = 0; i < 4; ++i) {
      engine.simulate(x, y);
      ASSERT_EQ(y, want) << "streamed result diverged under plan '" << plan
                         << "' (pass " << i << ")";
      FaultInjector::instance().configure(plan);  // counters reset per pass
    }
    std::cout << "[ooc] plan '" << plan << "' recovered: retries="
              << engine.io_stats().retries << " checksum_failures="
              << engine.io_stats().checksum_failures << "\n";
  } catch (const acsr::vgpu::IoError& e) {
    EXPECT_FALSE(e.device().empty());
    std::cout << "[ooc] plan '" << plan << "' escalated typed: " << e.what()
              << "\n";
  }
  FaultInjector::instance().disable();
}

}  // namespace
