// SIMT primitive semantics: lane arrays, masks, shuffles, reductions,
// the coalescing counters, and the memory arena.
#include <gtest/gtest.h>

#include "vgpu/device.hpp"
#include "vgpu/lane_array.hpp"

namespace {

using namespace acsr::vgpu;

TEST(LaneArray, IotaAndMap) {
  const auto a = LaneArray<int>::iota(10, 2);
  EXPECT_EQ(a[0], 10);
  EXPECT_EQ(a[31], 10 + 62);
  const auto b = a.map([](int v) { return v * 3; });
  EXPECT_EQ(b[5], (10 + 10) * 3);
}

TEST(LaneArray, WhereRespectsMask) {
  const auto a = LaneArray<int>::iota();
  const Mask m = a.where([](int v) { return v < 4; }, first_lanes(8));
  EXPECT_EQ(m, 0b1111u);
  const Mask m2 = a.where([](int v) { return v >= 6; }, first_lanes(8));
  EXPECT_EQ(m2, 0b11000000u);
}

TEST(Masks, Helpers) {
  EXPECT_EQ(active_lanes(kFullMask), 32);
  EXPECT_EQ(active_lanes(first_lanes(5)), 5);
  EXPECT_TRUE(lane_active(first_lanes(3), 2));
  EXPECT_FALSE(lane_active(first_lanes(3), 3));
  EXPECT_EQ(first_lanes(0), 0u);
  EXPECT_EQ(first_lanes(32), kFullMask);
  EXPECT_EQ(first_lanes(64), kFullMask);
}

TEST(FmaInto, OnlyActiveLanes) {
  LaneArray<double> acc{};
  const auto a = LaneArray<double>::filled(2.0);
  const auto b = LaneArray<double>::filled(3.0);
  fma_into(acc, a, b, first_lanes(4));
  EXPECT_DOUBLE_EQ(acc[3], 6.0);
  EXPECT_DOUBLE_EQ(acc[4], 0.0);
}

class WarpFixture : public ::testing::Test {
 protected:
  WarpFixture() : dev(DeviceSpec::gtx_titan()) {}

  /// Run `fn` in a single warp of a 1-block grid and return the run record.
  template <class F>
  KernelRun run_warp(F&& fn) {
    LaunchConfig cfg;
    cfg.name = "test";
    cfg.block_dim = 32;
    return dev.launch_warps(cfg, fn);
  }

  Device dev;
};

TEST_F(WarpFixture, ShflDownFullWidth) {
  run_warp([&](Warp& w) {
    auto v = LaneArray<int>::iota();
    const auto s = w.shfl_down(v, 4);
    EXPECT_EQ(s[0], 4);
    EXPECT_EQ(s[27], 31);
    EXPECT_EQ(s[28], 28);  // beyond the group: unchanged
  });
}

TEST_F(WarpFixture, ShflDownSubgroups) {
  run_warp([&](Warp& w) {
    auto v = LaneArray<int>::iota();
    const auto s = w.shfl_down(v, 2, 8);
    EXPECT_EQ(s[0], 2);
    EXPECT_EQ(s[5], 7);
    EXPECT_EQ(s[6], 6);  // would cross the 8-lane group boundary
    EXPECT_EQ(s[8], 10);
  });
}

TEST_F(WarpFixture, ReduceAddByGroup) {
  run_warp([&](Warp& w) {
    auto v = LaneArray<double>::filled(1.0);
    const auto r = w.reduce_add(v, kFullMask, 8);
    EXPECT_DOUBLE_EQ(r[0], 8.0);
    EXPECT_DOUBLE_EQ(r[8], 8.0);
    EXPECT_DOUBLE_EQ(r[24], 8.0);
  });
}

TEST_F(WarpFixture, ReduceAddRespectsMask) {
  run_warp([&](Warp& w) {
    auto v = LaneArray<double>::filled(1.0);
    const auto r = w.reduce_add(v, first_lanes(5), 32);
    EXPECT_DOUBLE_EQ(r[0], 5.0);
  });
}

TEST_F(WarpFixture, CoalescedLoadIsFourSectors) {
  auto buf = dev.alloc<float>(1024, "buf");
  for (std::size_t i = 0; i < 1024; ++i)
    buf.host()[i] = static_cast<float>(i);
  auto span = buf.cspan();
  const KernelRun run = run_warp([&](Warp& w) {
    const auto idx = LaneArray<long long>::iota();
    const auto v = w.load(span, idx, kFullMask);
    EXPECT_FLOAT_EQ(v[7], 7.0f);
  });
  // 32 lanes x 4 B contiguous = 128 B = four 32 B sectors.
  EXPECT_EQ(run.counters.gmem_transactions, 4u);
  EXPECT_EQ(run.counters.gmem_bytes, 128u);
}

TEST_F(WarpFixture, StridedLoadIsManyTransactions) {
  auto buf = dev.alloc<float>(32 * 64, "buf");
  auto span = buf.cspan();
  const KernelRun run = run_warp([&](Warp& w) {
    const auto idx = LaneArray<long long>::iota(0, 64);  // 256 B stride
    (void)w.load(span, idx, kFullMask);
  });
  EXPECT_EQ(run.counters.gmem_transactions, 32u);  // fully scattered
}

TEST_F(WarpFixture, DoubleCoalescedLoadIsEightSectors) {
  auto buf = dev.alloc<double>(64, "buf");
  auto span = buf.cspan();
  const KernelRun run = run_warp([&](Warp& w) {
    (void)w.load(span, LaneArray<long long>::iota(), kFullMask);
  });
  EXPECT_EQ(run.counters.gmem_transactions, 8u);  // 32 x 8 B = 256 B
}

TEST_F(WarpFixture, InactiveLanesGenerateNoTraffic) {
  auto buf = dev.alloc<float>(1024, "buf");
  auto span = buf.cspan();
  const KernelRun run = run_warp([&](Warp& w) {
    const auto idx = LaneArray<long long>::iota(0, 64);
    (void)w.load(span, idx, first_lanes(2));
  });
  EXPECT_EQ(run.counters.gmem_transactions, 2u);
}

TEST_F(WarpFixture, TextureLoadUses32ByteSegments) {
  auto buf = dev.alloc<float>(1024, "x");
  auto span = buf.cspan();
  const KernelRun run = run_warp([&](Warp& w) {
    (void)w.load_tex(span, LaneArray<long long>::iota(), kFullMask);
  });
  EXPECT_EQ(run.counters.tex_transactions, 4u);  // 128 B / 32 B
  EXPECT_EQ(run.counters.gmem_transactions, 0u);
}

TEST_F(WarpFixture, AtomicConflictsCounted) {
  auto buf = dev.alloc<double>(16, "y");
  auto span = buf.span();
  const KernelRun run = run_warp([&](Warp& w) {
    const auto idx = LaneArray<long long>::filled(3);  // all hit one address
    const auto v = LaneArray<double>::filled(1.0);
    w.atomic_add(span, idx, v, kFullMask);
  });
  EXPECT_EQ(run.counters.atomic_ops, 32u);
  EXPECT_EQ(run.counters.atomic_conflicts, 31u);
  EXPECT_DOUBLE_EQ(buf.host()[3], 32.0);
}

TEST_F(WarpFixture, StoreWritesOnlyActiveLanes) {
  auto buf = dev.alloc<int>(32, "out");
  auto span = buf.span();
  run_warp([&](Warp& w) {
    w.store(span, LaneArray<long long>::iota(),
            LaneArray<int>::filled(7), first_lanes(3));
  });
  EXPECT_EQ(buf.host()[2], 7);
  EXPECT_EQ(buf.host()[3], 0);
}

TEST(Memory, ArenaCapacityEnforced) {
  MemoryArena arena(1024);
  const auto a1 = arena.allocate(512, "a");
  EXPECT_GE(arena.allocated(), 512u);
  EXPECT_THROW(arena.allocate(768, "b"), DeviceOom);
  arena.release(512);
  EXPECT_NO_THROW(arena.allocate(768, "c"));
  (void)a1;
}

TEST(Memory, DistinctBuffersGetDistinctAddresses) {
  Device dev(DeviceSpec::gtx_titan());
  auto a = dev.alloc<float>(100, "a");
  auto b = dev.alloc<float>(100, "b");
  EXPECT_NE(a.cspan().addr(), b.cspan().addr());
  // No overlap.
  const auto a_end = a.cspan().addr_of(100);
  EXPECT_GE(b.cspan().addr(), a_end);
}

TEST(Memory, SpanBoundsChecked) {
  Device dev(DeviceSpec::gtx_titan());
  auto a = dev.alloc<float>(8, "a");
  EXPECT_THROW(a.span()[8], acsr::InvariantError);
  auto sub = a.cspan().subspan(2, 4);
  EXPECT_EQ(sub.size(), 4u);
  EXPECT_EQ(sub.addr(), a.cspan().addr() + 8);
}

TEST(Memory, TransferModelScalesWithBytes) {
  Device dev(DeviceSpec::gtx_titan());
  const auto small = dev.note_transfer(1024);
  const auto big = dev.note_transfer(64 * 1024 * 1024);
  EXPECT_GT(big.duration_s, small.duration_s);
  // Large transfer approaches the bandwidth bound.
  const double bw_s = 64.0 * 1024 * 1024 / (dev.spec().pcie_bandwidth_gbs * 1e9);
  EXPECT_NEAR(big.duration_s, bw_s + dev.spec().transfer_setup_s, 1e-9);
  EXPECT_EQ(dev.transfer_bytes(), 1024u + 64u * 1024 * 1024);
}

TEST(DeviceSpecs, PresetsMatchTableII) {
  const auto t = DeviceSpec::gtx_titan();
  EXPECT_TRUE(t.supports_dynamic_parallelism());
  EXPECT_EQ(t.sm_count, 14);

  const auto f = DeviceSpec::gtx580();
  EXPECT_FALSE(f.supports_dynamic_parallelism());
  EXPECT_EQ(f.compute_major, 2);

  const auto k = DeviceSpec::tesla_k10();
  EXPECT_FALSE(k.supports_dynamic_parallelism());
  EXPECT_LT(k.dp_throughput_ratio, f.dp_throughput_ratio);

  EXPECT_EQ(DeviceSpec::by_name("titan").name, "GTXTitan");
  EXPECT_THROW(DeviceSpec::by_name("h100"), acsr::InputError);
}

}  // namespace
