// Edge cases across the vgpu substrate: buffer ownership moves, shared-
// memory regions, launch validation, zero-fill accounting, scalar loads,
// and the serial-gmem path used by the update kernel.
#include <gtest/gtest.h>

#include "spmv/engine.hpp"
#include "vgpu/device.hpp"

namespace {

using namespace acsr::vgpu;

TEST(DeviceBufferEdge, MoveTransfersOwnershipAndReleasesArena) {
  Device dev(DeviceSpec::gtx_titan());
  const std::size_t before = dev.arena().allocated();
  {
    auto a = dev.alloc<double>(1000, "a");
    EXPECT_GT(dev.arena().allocated(), before);
    auto b = std::move(a);
    EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): tested
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(b.size(), 1000u);
    // Move-assign over an existing buffer releases the old allocation.
    auto c = dev.alloc<double>(500, "c");
    const std::size_t with_both = dev.arena().allocated();
    c = std::move(b);
    EXPECT_LT(dev.arena().allocated(), with_both);
  }
  EXPECT_EQ(dev.arena().allocated(), before);  // full cleanup on scope exit
}

TEST(DeviceBufferEdge, UploadChargesTransfer) {
  Device dev(DeviceSpec::gtx_titan());
  const double t0 = dev.transfer_seconds();
  std::vector<float> host(4096, 1.5f);
  auto b = dev.upload(host, "u");
  EXPECT_GT(dev.transfer_seconds(), t0);
  EXPECT_EQ(b.host()[10], 1.5f);
  dev.reset_transfer_stats();
  EXPECT_EQ(dev.transfer_bytes(), 0u);
}

TEST(BlockShared, RegionsAreIndependentAndZeroed) {
  Device dev(DeviceSpec::gtx_titan());
  LaunchConfig cfg;
  cfg.block_dim = 64;
  dev.launch(cfg, [&](Block& blk) {
    auto a = blk.shared<double>(8);
    auto b = blk.shared<int>(16);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(a[i], 0.0);
    for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(b[i], 0);
    a[3] = 7.5;
    b[3] = 9;
    EXPECT_EQ(a[3], 7.5);  // no aliasing between regions
    EXPECT_EQ(b[3], 9);
    EXPECT_NE(a.addr(), b.addr());
  });
}

TEST(LaunchValidation, RejectsBadGeometry) {
  Device dev(DeviceSpec::gtx_titan());
  LaunchConfig bad_grid;
  bad_grid.grid_dim = 0;
  EXPECT_THROW(dev.launch(bad_grid, [](Block&) {}), acsr::InvariantError);
  LaunchConfig bad_block;
  bad_block.block_dim = 2048;  // above max_threads_per_block
  EXPECT_THROW(dev.launch(bad_block, [](Block&) {}), acsr::InvariantError);
}

TEST(ZeroFill, WritesAndChargesCoalescedStores) {
  Device dev(DeviceSpec::gtx_titan());
  auto y = dev.alloc<double>(1000, "y");
  for (auto& v : y.host()) v = 3.0;
  const KernelRun run = acsr::spmv::zero_fill(dev, y.span());
  for (double v : y.host()) EXPECT_EQ(v, 0.0);
  // 1000 x 8 B = 8000 B = 250 sectors, each written once.
  EXPECT_EQ(run.counters.gmem_transactions, 250u);
  EXPECT_GT(run.duration_s, 0.0);
}

TEST(ScalarLoad, BroadcastsAndCountsOneTransaction) {
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<int>(64, "b");
  buf.host()[7] = 42;
  auto span = buf.cspan();
  LaunchConfig cfg;
  cfg.block_dim = 32;
  const KernelRun run = dev.launch_warps(cfg, [&](Warp& w) {
    EXPECT_EQ(w.load_scalar(span, 7), 42);
  });
  EXPECT_EQ(run.counters.gmem_transactions, 1u);
}

TEST(SerialGmem, ChargesSectorPerAccess) {
  Device dev(DeviceSpec::gtx_titan());
  LaunchConfig cfg;
  cfg.block_dim = 32;
  const KernelRun run = dev.launch_warps(cfg, [&](Warp& w) {
    w.count_serial_gmem(17);
  });
  EXPECT_EQ(run.counters.gmem_transactions, 17u);
  EXPECT_EQ(run.counters.gmem_bytes, 17u * 32u);
}

TEST(PartialBlock, LastWarpMaskAppliesToWork) {
  Device dev(DeviceSpec::gtx_titan());
  auto out = dev.alloc<int>(48, "o");
  auto span = out.span();
  LaunchConfig cfg;
  cfg.block_dim = 48;  // warp 1 has 16 live lanes
  dev.launch_warps(cfg, [&](Warp& w) {
    w.store(span, w.global_threads(), LaneArray<int>::filled(1),
            w.active_mask());
  });
  int written = 0;
  for (int v : out.host()) written += v;
  EXPECT_EQ(written, 48);
}

TEST(CountersAccumulate, PlusEqualsSumsEveryField) {
  Counters a, b;
  a.warps = 3;
  a.gmem_bytes = 100;
  a.child_launches = 2;
  b.warps = 4;
  b.gmem_bytes = 50;
  b.atomic_ops = 7;
  a += b;
  EXPECT_EQ(a.warps, 7u);
  EXPECT_EQ(a.gmem_bytes, 150u);
  EXPECT_EQ(a.child_launches, 2u);
  EXPECT_EQ(a.atomic_ops, 7u);
}

}  // namespace
