// Engine-report invariants, parameterized over every engine: transfer and
// footprint accounting, memoized timing, determinism of the simulator, and
// input validation.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "graph/powerlaw.hpp"

namespace {

using namespace acsr;

mat::Csr<float> test_matrix() {
  graph::PowerLawSpec s;
  s.rows = 700;
  s.cols = 700;
  s.mean_nnz_per_row = 8.0;
  s.alpha = 1.6;
  s.max_row_nnz = 120;  // modest tail so even pure ELL accepts it
  s.seed = 33;
  const mat::Csr<double> d = graph::powerlaw_matrix(s);
  mat::Csr<float> f;
  f.rows = d.rows;
  f.cols = d.cols;
  f.row_off = d.row_off;
  f.col_idx = d.col_idx;
  f.vals.assign(d.vals.begin(), d.vals.end());
  return f;
}

class EngineReportTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineReportTest, AccountingInvariants) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  const auto m = test_matrix();
  core::EngineConfig cfg;
  cfg.hyb_breakeven = 64;
  auto e = core::make_engine<float>(GetParam(), dev, m, cfg);

  const auto& r = e->report();
  EXPECT_EQ(e->name(), r.format);
  EXPECT_EQ(e->rows(), m.rows);
  EXPECT_EQ(e->cols(), m.cols);
  EXPECT_EQ(e->nnz(), m.nnz());

  // The matrix data must have crossed PCIe and must live on the device.
  EXPECT_GT(r.h2d_bytes, static_cast<std::size_t>(m.nnz()));
  EXPECT_GT(r.h2d_s, 0.0);
  EXPECT_GE(r.device_bytes, m.vals.size() * sizeof(float));
  EXPECT_LE(dev.arena().allocated(), dev.arena().capacity());

  EXPECT_GE(r.preprocess_s, 0.0);
  EXPECT_GE(r.padding_ratio, 0.0);
  EXPECT_LT(r.padding_ratio, 1.0);
}

TEST_P(EngineReportTest, TimingMemoizedAndDeterministic) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  core::EngineConfig cfg;
  cfg.hyb_breakeven = 64;
  auto e = core::make_engine<float>(GetParam(), dev, test_matrix(), cfg);
  const double t1 = e->spmv_seconds();
  const double t2 = e->spmv_seconds();
  EXPECT_EQ(t1, t2);
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(e->gflops(), 0.0);

  // A fresh simulate with the same input must give the identical duration
  // (the simulator is deterministic — no wall-clock noise).
  std::vector<float> x(700, 1.0f), y;
  const double a = e->simulate(x, y);
  const double b = e->simulate(x, y);
  EXPECT_EQ(a, b);
  // Kernel-run record populated.
  EXPECT_GT(e->report().last_run.counters.warps, 0u);
  EXPECT_GT(e->report().last_run.counters.gmem_bytes, 0u);
}

TEST_P(EngineReportTest, RejectsWrongXSize) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  core::EngineConfig cfg;
  cfg.hyb_breakeven = 64;
  auto e = core::make_engine<float>(GetParam(), dev, test_matrix(), cfg);
  std::vector<float> x(13, 1.0f), y;
  EXPECT_THROW(e->simulate(x, y), InvariantError);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineReportTest,
    ::testing::Values("csr-scalar", "csr", "csr-vector", "ell", "coo",
                      "hyb", "brc", "bccoo", "tcoo", "sic", "bcsr", "sell",
                      "merge-csr", "acsr", "acsr-binning"),
    [](const auto& tpi) {
      std::string n = tpi.param;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(EngineFactory, RejectsUnknownName) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  EXPECT_THROW(
      core::make_engine<float>("fancy-new-format", dev, test_matrix()),
      InputError);
}

TEST(EngineFactory, CsrAliasIsWarpPerRow) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  auto e = core::make_engine<float>("csr", dev, test_matrix());
  // cuSPARSE-style: full warp per row regardless of mu.
  auto* v = dynamic_cast<spmv::CsrVectorEngine<float>*>(e.get());
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->vector_size(), 32);
}

TEST(EngineFactory, AdaptiveVectorSizeTracksMu) {
  // CUSP heuristic: v = nearest power of two to mu, in [2, 32].
  EXPECT_EQ(spmv::choose_vector_size(1.0), 2);
  EXPECT_EQ(spmv::choose_vector_size(4.0), 4);
  EXPECT_EQ(spmv::choose_vector_size(9.0), 8);
  EXPECT_EQ(spmv::choose_vector_size(1000.0), 32);
}

}  // namespace
