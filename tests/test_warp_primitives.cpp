// The vote/shuffle/scan warp primitives behind the segmented-reduction
// kernels: semantics pinned against hand-computed references, including
// sub-group widths, partial masks, and segment boundaries.
#include <gtest/gtest.h>

#include "vgpu/device.hpp"

namespace {

using namespace acsr::vgpu;

class WarpPrimitives : public ::testing::Test {
 protected:
  WarpPrimitives() : dev(DeviceSpec::gtx_titan()) {}

  template <class F>
  KernelRun run_warp(F&& fn) {
    LaunchConfig cfg;
    cfg.block_dim = 32;
    return dev.launch_warps(cfg, fn);
  }

  Device dev;
};

TEST_F(WarpPrimitives, BallotMatchesPredicate) {
  run_warp([&](Warp& w) {
    const Mask even =
        w.ballot([](int l) { return l % 2 == 0; }, kFullMask);
    EXPECT_EQ(even, 0x55555555u);
    const Mask low = w.ballot([](int l) { return l < 4; }, first_lanes(16));
    EXPECT_EQ(low, 0xFu);
    // Inactive lanes never vote.
    const Mask none = w.ballot([](int) { return true; }, 0);
    EXPECT_EQ(none, 0u);
  });
}

TEST_F(WarpPrimitives, ShflUpSemantics) {
  run_warp([&](Warp& w) {
    const auto v = LaneArray<int>::iota();
    const auto s = w.shfl_up(v, 3);
    EXPECT_EQ(s[0], 0);  // below the edge: unchanged
    EXPECT_EQ(s[2], 2);
    EXPECT_EQ(s[3], 0);
    EXPECT_EQ(s[31], 28);
    const auto g = w.shfl_up(v, 2, 8);  // sub-groups of 8
    EXPECT_EQ(g[8], 8);                 // group edge
    EXPECT_EQ(g[10], 8);
    EXPECT_EQ(g[15], 13);
  });
}

TEST_F(WarpPrimitives, ShflXorButterfly) {
  run_warp([&](Warp& w) {
    const auto v = LaneArray<int>::iota();
    const auto s = w.shfl_xor(v, 1);
    EXPECT_EQ(s[0], 1);
    EXPECT_EQ(s[1], 0);
    EXPECT_EQ(s[30], 31);
    const auto s16 = w.shfl_xor(v, 16);
    EXPECT_EQ(s16[0], 16);
    EXPECT_EQ(s16[20], 4);
  });
}

TEST_F(WarpPrimitives, InclusiveScanAdd) {
  run_warp([&](Warp& w) {
    const auto v = LaneArray<double>::filled(1.0);
    const auto s = w.inclusive_scan_add(v, kFullMask);
    for (int l = 0; l < kWarpSize; ++l)
      EXPECT_DOUBLE_EQ(s[l], static_cast<double>(l + 1)) << "lane " << l;
  });
}

TEST_F(WarpPrimitives, InclusiveScanSkipsInactive) {
  run_warp([&](Warp& w) {
    auto v = LaneArray<double>::filled(2.0);
    const auto s = w.inclusive_scan_add(v, first_lanes(5));
    EXPECT_DOUBLE_EQ(s[4], 10.0);
    EXPECT_DOUBLE_EQ(s[10], 10.0);  // inactive contribute zero
  });
}

TEST_F(WarpPrimitives, SegmentedScanStopsAtHeads) {
  run_warp([&](Warp& w) {
    const auto v = LaneArray<double>::filled(1.0);
    // Segments: [0..9], [10..19], [20..31].
    const Mask heads = lane_bit(0) | lane_bit(10) | lane_bit(20);
    const auto s = w.segmented_scan_add(v, heads, kFullMask);
    EXPECT_DOUBLE_EQ(s[0], 1.0);
    EXPECT_DOUBLE_EQ(s[9], 10.0);
    EXPECT_DOUBLE_EQ(s[10], 1.0);  // reset at segment head
    EXPECT_DOUBLE_EQ(s[19], 10.0);
    EXPECT_DOUBLE_EQ(s[20], 1.0);
    EXPECT_DOUBLE_EQ(s[31], 12.0);
  });
}

TEST_F(WarpPrimitives, SegmentedScanSingleLaneSegments) {
  run_warp([&](Warp& w) {
    const auto v = LaneArray<double>::iota(1.0);
    const auto s = w.segmented_scan_add(v, kFullMask, kFullMask);
    // Every lane its own segment: identity.
    for (int l = 0; l < kWarpSize; ++l)
      EXPECT_DOUBLE_EQ(s[l], static_cast<double>(l + 1));
  });
}

TEST_F(WarpPrimitives, SegmentedScanMatchesSequentialReference) {
  run_warp([&](Warp& w) {
    LaneArray<double> v;
    for (int l = 0; l < kWarpSize; ++l) v[l] = 0.5 + (l % 7);
    const Mask heads =
        lane_bit(0) | lane_bit(3) | lane_bit(4) | lane_bit(17) | lane_bit(29);
    const auto s = w.segmented_scan_add(v, heads, kFullMask);
    double acc = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (lane_active(heads, l)) acc = 0;
      acc += v[l];
      EXPECT_DOUBLE_EQ(s[l], acc) << "lane " << l;
    }
  });
}

TEST_F(WarpPrimitives, ScanChargesShuffleInstructions) {
  const KernelRun run = run_warp([&](Warp& w) {
    (void)w.inclusive_scan_add(LaneArray<double>::filled(1.0), kFullMask);
  });
  EXPECT_EQ(run.counters.shuffle_ops, 5u);  // log2(32) Hillis-Steele steps
  EXPECT_GT(run.counters.dp_flops, 0u);
}

}  // namespace
