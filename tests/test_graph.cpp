// Generators and the dynamic-update machinery: determinism, shape targets,
// the Table-I corpus, and update-batch invariants.
#include <gtest/gtest.h>

#include "graph/corpus.hpp"
#include "graph/dynamic.hpp"
#include "graph/powerlaw.hpp"
#include "graph/rmat.hpp"

namespace {

using namespace acsr::graph;
using acsr::mat::Csr;
using acsr::mat::index_t;
using acsr::mat::offset_t;

TEST(Rmat, DeterministicAndShaped) {
  RmatParams p;
  p.scale = 10;
  p.edges_per_vertex = 8.0;
  p.seed = 42;
  const auto a = rmat(p);
  const auto b = rmat(p);
  EXPECT_EQ(a.row_idx, b.row_idx);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.rows, 1024);
  EXPECT_GT(a.nnz(), 4000);
  // Skewed: the max out-degree should far exceed the mean.
  const Csr<double> m = Csr<double>::from_coo(a);
  const auto st = m.row_stats();
  EXPECT_GT(static_cast<double>(st.max), 4.0 * st.mean);
}

TEST(Rmat, RejectsBadProbabilities) {
  RmatParams p;
  p.a = 0.9;  // sums to > 1 with defaults
  EXPECT_THROW(rmat(p), acsr::InputError);
}

TEST(PowerLaw, HitsMeanTarget) {
  PowerLawSpec s;
  s.rows = 4000;
  s.cols = 4000;
  s.mean_nnz_per_row = 10.0;
  s.alpha = 1.7;
  s.max_row_nnz = 800;
  s.seed = 1;
  const Csr<double> m = powerlaw_matrix(s);
  const auto st = m.row_stats();
  EXPECT_NEAR(st.mean, 10.0, 1.5);
  EXPECT_GT(st.stddev, st.mean);              // heavy tail
  EXPECT_GT(static_cast<double>(st.max), 0.5 * 800.0);  // injected tail
}

TEST(PowerLaw, UniformModeHasLowVariance) {
  PowerLawSpec s;
  s.rows = 4000;
  s.cols = 4000;
  s.mean_nnz_per_row = 8.0;
  s.alpha = -1.0;  // uniform model
  s.max_row_nnz = 15;
  s.seed = 2;
  const Csr<double> m = powerlaw_matrix(s);
  const auto st = m.row_stats();
  EXPECT_NEAR(st.mean, 8.0, 1.0);
  EXPECT_LT(st.stddev, st.mean);
  EXPECT_LE(st.max, 15);
}

TEST(PowerLaw, RowsSortedAndDeterministic) {
  PowerLawSpec s;
  s.rows = 500;
  s.cols = 700;
  s.mean_nnz_per_row = 6.0;
  s.seed = 3;
  const Csr<double> a = powerlaw_matrix(s);
  const Csr<double> b = powerlaw_matrix(s);
  EXPECT_TRUE(a.rows_sorted());
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.vals, b.vals);
}

TEST(Corpus, HasAll17Matrices) {
  const auto& corpus = table1_corpus();
  EXPECT_EQ(corpus.size(), 17u);
  EXPECT_EQ(corpus.front().abbrev, "AMZ");
  EXPECT_EQ(corpus.back().abbrev, "RAL");
  EXPECT_FALSE(corpus_entry("HOL").power_law == false);
  EXPECT_FALSE(corpus_entry("AMZ").power_law);
  EXPECT_THROW(corpus_entry("NOPE"), acsr::InputError);
  // RAL is the rectangular one.
  const auto& ral = corpus_entry("RAL");
  EXPECT_GT(ral.paper_cols, 100 * ral.paper_rows);
}

TEST(Corpus, ScaledBuildPreservesShape) {
  const auto& e = corpus_entry("ENR");
  const Csr<double> m = build_matrix(e, 16, 42);
  m.validate();
  EXPECT_NEAR(static_cast<double>(m.rows),
              static_cast<double>(e.paper_rows) / 16.0, 2.0);
  const auto st = m.row_stats();
  EXPECT_NEAR(st.mean, e.paper_mu, 0.35 * e.paper_mu);
  EXPECT_GT(st.stddev, st.mean);  // power-law shape survives scaling
}

TEST(Corpus, RectangularEntryBuilds) {
  const Csr<double> m = build_matrix(corpus_entry("RAL"), 64, 42);
  m.validate();
  EXPECT_GT(m.cols, 10 * m.rows);
  const auto st = m.row_stats();
  EXPECT_GT(st.mean, 1000.0);  // very wide rows survive scaling
}

class UpdateBatchTest : public ::testing::Test {
 protected:
  Csr<double> matrix() {
    PowerLawSpec s;
    s.rows = 800;
    s.cols = 800;
    s.mean_nnz_per_row = 7.0;
    s.alpha = 1.7;
    s.max_row_nnz = 150;
    s.seed = 8;
    return powerlaw_matrix(s);
  }
};

TEST_F(UpdateBatchTest, BatchInvariants) {
  const Csr<double> m = matrix();
  UpdateParams p;
  p.seed = 17;
  const UpdateBatch<double> b = generate_update(m, p);
  b.validate();
  EXPECT_NEAR(static_cast<double>(b.rows.size()), 80.0, 2.0);
  EXPECT_GT(b.num_deletes() + b.num_inserts(), 0u);
  EXPECT_GT(b.bytes(), 0u);
  // Change list is much smaller than the matrix itself (the paper's
  // whole transfer-saving argument).
  EXPECT_LT(b.bytes(), m.bytes() / 4);
}

TEST_F(UpdateBatchTest, DeletesExistInserstAbsent) {
  const Csr<double> m = matrix();
  UpdateParams p;
  p.seed = 23;
  const UpdateBatch<double> b = generate_update(m, p);
  for (std::size_t i = 0; i < b.rows.size(); ++i) {
    const auto r = static_cast<std::size_t>(b.rows[i]);
    std::vector<index_t> row_cols(
        m.col_idx.begin() + m.row_off[r],
        m.col_idx.begin() + m.row_off[r + 1]);
    for (offset_t k = b.del_off[i]; k < b.del_off[i + 1]; ++k)
      EXPECT_TRUE(std::binary_search(row_cols.begin(), row_cols.end(),
                                     b.del_cols[static_cast<std::size_t>(k)]))
          << "delete of absent column";
    // An inserted column may pre-exist in the row only if it is also being
    // deleted (delete-then-reinsert); otherwise the row would end up with
    // a duplicate column.
    for (offset_t k = b.ins_off[i]; k < b.ins_off[i + 1]; ++k) {
      const index_t c = b.ins_cols[static_cast<std::size_t>(k)];
      if (std::binary_search(row_cols.begin(), row_cols.end(), c)) {
        EXPECT_TRUE(std::binary_search(
            b.del_cols.begin() + b.del_off[i],
            b.del_cols.begin() + b.del_off[i + 1], c))
            << "re-insert of live column " << c;
      }
    }
  }
}

TEST_F(UpdateBatchTest, HostApplyPreservesInvariants) {
  Csr<double> m = matrix();
  const offset_t nnz0 = m.nnz();
  UpdateParams p;
  p.seed = 31;
  const UpdateBatch<double> b = generate_update(m, p);
  apply_update_host(m, b);
  m.validate();
  EXPECT_TRUE(m.rows_sorted());
  // nnz roughly conserved (equal insert/delete odds).
  EXPECT_NEAR(static_cast<double>(m.nnz()), static_cast<double>(nnz0),
              0.1 * static_cast<double>(nnz0));
}

TEST_F(UpdateBatchTest, RepeatedEpochsStayValid) {
  Csr<double> m = matrix();
  for (int e = 0; e < 5; ++e) {
    UpdateParams p;
    p.seed = 100 + static_cast<std::uint64_t>(e);
    const UpdateBatch<double> b = generate_update(m, p);
    b.validate();
    apply_update_host(m, b);
    m.validate();
    EXPECT_TRUE(m.rows_sorted());
  }
}

TEST_F(UpdateBatchTest, UntouchedRowsUnchanged) {
  Csr<double> m0 = matrix();
  Csr<double> m = m0;
  UpdateParams p;
  p.seed = 57;
  const UpdateBatch<double> b = generate_update(m, p);
  apply_update_host(m, b);
  std::vector<bool> touched(static_cast<std::size_t>(m.rows), false);
  for (index_t r : b.rows) touched[static_cast<std::size_t>(r)] = true;
  for (index_t r = 0; r < m.rows; ++r) {
    if (touched[static_cast<std::size_t>(r)]) continue;
    ASSERT_EQ(m.row_nnz(r), m0.row_nnz(r)) << "row " << r;
    for (offset_t j = 0; j < m.row_nnz(r); ++j) {
      const auto a = static_cast<std::size_t>(
          m.row_off[static_cast<std::size_t>(r)] + j);
      const auto o = static_cast<std::size_t>(
          m0.row_off[static_cast<std::size_t>(r)] + j);
      ASSERT_EQ(m.col_idx[a], m0.col_idx[o]);
      ASSERT_EQ(m.vals[a], m0.vals[o]);
    }
  }
}

}  // namespace
