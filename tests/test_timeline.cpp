// Stream/event timeline semantics: per-stream ordering, cross-stream
// independence, event waits, synchronisation, and the utilisation log.
#include <gtest/gtest.h>

#include "vgpu/timeline.hpp"

namespace {

using acsr::vgpu::StreamTimeline;

TEST(StreamTimeline, WorkSerialisesPerStream) {
  StreamTimeline t;
  const auto s = t.create_stream();
  EXPECT_DOUBLE_EQ(t.enqueue(s, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.enqueue(s, 2.5), 3.5);
  EXPECT_DOUBLE_EQ(t.now(s), 3.5);
}

TEST(StreamTimeline, StreamsAreIndependent) {
  StreamTimeline t;
  const auto a = t.create_stream();
  const auto b = t.create_stream();
  t.enqueue(a, 5.0);
  t.enqueue(b, 1.0);
  EXPECT_DOUBLE_EQ(t.now(a), 5.0);
  EXPECT_DOUBLE_EQ(t.now(b), 1.0);
}

TEST(StreamTimeline, EventWaitOrdersAcrossStreams) {
  StreamTimeline t;
  const auto producer = t.create_stream();
  const auto consumer = t.create_stream();
  t.enqueue(producer, 4.0, "h2d");
  const auto ready = t.record(producer);
  t.enqueue(consumer, 1.0, "unrelated");
  t.wait(consumer, ready);  // cannot start the kernel before the copy
  EXPECT_DOUBLE_EQ(t.enqueue(consumer, 2.0, "kernel"), 6.0);
}

TEST(StreamTimeline, WaitOnPastEventIsFree) {
  StreamTimeline t;
  const auto a = t.create_stream();
  const auto b = t.create_stream();
  const auto e = t.record(a);  // time 0
  t.enqueue(b, 3.0);
  t.wait(b, e);
  EXPECT_DOUBLE_EQ(t.now(b), 3.0);  // no rollback
}

TEST(StreamTimeline, SynchronizeJoinsEverything) {
  StreamTimeline t;
  const auto a = t.create_stream();
  const auto b = t.create_stream();
  const auto c = t.create_stream();
  t.enqueue(a, 1.0);
  t.enqueue(b, 7.0);
  t.enqueue(c, 3.0);
  EXPECT_DOUBLE_EQ(t.synchronize(), 7.0);
  // After the join every stream starts from the makespan.
  EXPECT_DOUBLE_EQ(t.enqueue(a, 1.0), 8.0);
}

TEST(StreamTimeline, OverlapBeatsSerial) {
  // The classic copy/compute pipeline: with two streams the transfer of
  // chunk i+1 overlaps the kernel on chunk i.
  auto run = [](bool overlapped) {
    StreamTimeline t;
    const auto copy = t.create_stream();
    const auto exec = overlapped ? t.create_stream() : copy;
    StreamTimeline::Event prev{};
    for (int chunk = 0; chunk < 4; ++chunk) {
      t.enqueue(copy, 1.0, "h2d");
      const auto done = t.record(copy);
      t.wait(exec, done);
      t.enqueue(exec, 1.0, "kernel");
      prev = t.record(exec);
    }
    return t.synchronize();
  };
  EXPECT_DOUBLE_EQ(run(false), 8.0);
  EXPECT_DOUBLE_EQ(run(true), 5.0);
}

TEST(StreamTimeline, LogAndBusyTime) {
  StreamTimeline t;
  const auto s = t.create_stream();
  t.enqueue(s, 2.0, "a");
  t.enqueue(s, 3.0, "b");
  ASSERT_EQ(t.log().size(), 2u);
  EXPECT_EQ(t.log()[1].tag, "b");
  EXPECT_DOUBLE_EQ(t.log()[1].start_s, 2.0);
  EXPECT_DOUBLE_EQ(t.busy_seconds(), 5.0);
}

TEST(StreamTimeline, RejectsBadInput) {
  StreamTimeline t;
  const auto s = t.create_stream();
  EXPECT_THROW(t.enqueue(s, -1.0), acsr::InvariantError);
  EXPECT_THROW(t.now(99), acsr::InvariantError);
  EXPECT_THROW(t.enqueue(42, 1.0), acsr::InvariantError);
}

}  // namespace
