// Graph applications: PageRank / HITS / RWR semantics and the dynamic
// PageRank driver of section VII.
#include <gtest/gtest.h>

#include "apps/dynamic_pagerank.hpp"
#include "apps/hits.hpp"
#include "apps/pagerank.hpp"
#include "apps/rwr.hpp"
#include "core/factory.hpp"
#include "graph/powerlaw.hpp"

namespace {

using namespace acsr;
using apps::PageRankConfig;
using apps::PowerIterConfig;
using core::AcsrEngine;
using mat::Csr;
using vgpu::Device;
using vgpu::DeviceSpec;

Csr<double> chain_graph() {
  // 0 -> 1 -> 2 -> 0 plus 3 -> 0: a tiny graph with a known structure.
  mat::Coo<double> c;
  c.rows = 4;
  c.cols = 4;
  c.push(0, 1, 1.0);
  c.push(1, 2, 1.0);
  c.push(2, 0, 1.0);
  c.push(3, 0, 1.0);
  return Csr<double>::from_coo(c);
}

Csr<double> powerlaw_graph(int n = 500, std::uint64_t seed = 3) {
  graph::PowerLawSpec s;
  s.rows = n;
  s.cols = n;
  s.mean_nnz_per_row = 6.0;
  s.alpha = 1.7;
  s.max_row_nnz = n / 4;
  s.seed = seed;
  return graph::powerlaw_matrix(s);
}

TEST(PageRank, SumsToOneAndConverges) {
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> m = apps::pagerank_matrix(powerlaw_graph());
  AcsrEngine<double> e(dev, m);
  const auto res = apps::pagerank(e, PageRankConfig{});
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.iterations, 3);
  EXPECT_GT(res.total_s, 0.0);
  double sum = 0;
  for (double v : res.scores) sum += v;
  // Dangling rows leak mass, but with this generator most nodes have
  // out-edges; the sum stays near 1.
  EXPECT_NEAR(sum, 1.0, 0.2);
  for (double v : res.scores) EXPECT_GE(v, 0.0);
}

TEST(PageRank, KnownTinyGraphOrdering) {
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> m = apps::pagerank_matrix(chain_graph());
  AcsrEngine<double> e(dev, m);
  const auto res = apps::pagerank(e, PageRankConfig{});
  ASSERT_TRUE(res.converged);
  // Node 0 receives from 2 and 3 -> highest rank; node 3 receives nothing.
  EXPECT_GT(res.scores[0], res.scores[1]);
  EXPECT_GT(res.scores[0], res.scores[3]);
  EXPECT_LT(res.scores[3], res.scores[2]);
  EXPECT_NEAR(res.scores[3], 0.15 / 4.0, 1e-6);  // (1-d)/n exactly
}

TEST(PageRank, WarmStartConvergesFaster) {
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> m = apps::pagerank_matrix(powerlaw_graph());
  AcsrEngine<double> e(dev, m);
  const auto cold = apps::pagerank(e, PageRankConfig{});
  const auto warm = apps::pagerank(e, PageRankConfig{}, &cold.scores);
  EXPECT_LT(warm.iterations, cold.iterations / 2 + 2);
}

TEST(PageRank, EngineAgnostic) {
  // Same scores whatever engine computes the SpMV.
  const Csr<double> m = apps::pagerank_matrix(powerlaw_graph(300, 7));
  Device d1(DeviceSpec::gtx_titan());
  Device d2(DeviceSpec::gtx_titan());
  core::EngineConfig cfg;
  cfg.hyb_breakeven = 64;
  auto acsr_e = core::make_engine<double>("acsr", d1, m, cfg);
  auto hyb_e = core::make_engine<double>("hyb", d2, m, cfg);
  const auto r1 = apps::pagerank(*acsr_e, PageRankConfig{});
  const auto r2 = apps::pagerank(*hyb_e, PageRankConfig{});
  EXPECT_EQ(r1.iterations, r2.iterations);
  for (std::size_t i = 0; i < r1.scores.size(); ++i)
    EXPECT_NEAR(r1.scores[i], r2.scores[i], 1e-9);
}

TEST(Hits, AuthorityAndHubStructure) {
  Device dev(DeviceSpec::gtx_titan());
  // Star: 1,2,3 all point to 0. Node 0 is the authority; 1-3 are hubs.
  mat::Coo<double> c;
  c.rows = 4;
  c.cols = 4;
  c.push(1, 0, 1.0);
  c.push(2, 0, 1.0);
  c.push(3, 0, 1.0);
  const Csr<double> a = Csr<double>::from_coo(c);
  const Csr<double> h = mat::make_hits_matrix(a);
  AcsrEngine<double> e(dev, h);
  const auto res = apps::hits(e, PowerIterConfig{});
  ASSERT_TRUE(res.iteration.converged);
  EXPECT_GT(res.authority[0], 0.9);
  EXPECT_NEAR(res.authority[1], 0.0, 1e-6);
  EXPECT_NEAR(res.hub[1], res.hub[2], 1e-9);
  EXPECT_GT(res.hub[1], 0.5);
  EXPECT_NEAR(res.hub[0], 0.0, 1e-6);
}

TEST(Hits, ConvergesOnPowerLaw) {
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> h = mat::make_hits_matrix(powerlaw_graph(300, 9));
  AcsrEngine<double> e(dev, h);
  const auto res = apps::hits(e, PowerIterConfig{});
  EXPECT_TRUE(res.iteration.converged);
  EXPECT_EQ(res.authority.size(), 300u);
  double norm = 0;
  for (double v : res.authority) norm += v * v;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-6);
}

TEST(Rwr, RestartMassAtSource) {
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> w = apps::rwr_matrix(powerlaw_graph(400, 11));
  AcsrEngine<double> e(dev, w);
  apps::RwrConfig cfg;
  cfg.source = 7;
  const auto res = apps::rwr(e, cfg);
  EXPECT_TRUE(res.converged);
  // The source keeps the restart mass: it should be the top-relevance node
  // for itself (or at least near the top).
  double max_v = 0;
  for (double v : res.scores) max_v = std::max(max_v, v);
  EXPECT_GE(res.scores[7], 0.5 * max_v);
  EXPECT_GE(res.scores[7], 1.0 - cfg.c);
}

TEST(Rwr, DifferentSourcesDiffer) {
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> w = apps::rwr_matrix(powerlaw_graph(200, 13));
  AcsrEngine<double> e(dev, w);
  apps::RwrConfig a;
  a.source = 3;
  apps::RwrConfig b;
  b.source = 100;
  const auto ra = apps::rwr(e, a);
  const auto rb = apps::rwr(e, b);
  EXPECT_GT(apps::euclidean_distance(ra.scores, rb.scores), 1e-3);
}

TEST(DynamicPageRank, RunsTenEpochsAndAcsrWins) {
  // Corpus-scaled spec: fixed overheads shrink with the 1/64-scale matrix.
  const DeviceSpec spec = DeviceSpec::gtx_titan().scaled_for_corpus(64);
  Device da(spec);
  Device dc(spec);
  Device dh(spec);
  const Csr<double> m = apps::pagerank_matrix(powerlaw_graph(600, 17));
  apps::DynamicPageRankConfig cfg;
  cfg.epochs = 6;
  cfg.hyb_breakeven = 64;
  const auto res = apps::dynamic_pagerank(da, dc, dh, m, cfg);
  ASSERT_EQ(res.epochs.size(), 6u);
  for (const auto& e : res.epochs) {
    EXPECT_GT(e.iterations, 0);
    EXPECT_GT(e.acsr_s, 0.0);
    EXPECT_GT(e.csr_s, 0.0);
    EXPECT_GT(e.hyb_s, 0.0);
  }
  // Warm starts: later epochs converge in fewer iterations than epoch 0.
  EXPECT_LT(res.epochs.back().iterations, res.epochs.front().iterations);
  // The headline: ACSR beats both baselines on average over the run,
  // and its advantage in later epochs exceeds epoch 0's.
  EXPECT_GT(res.mean_speedup_vs_csr(), 1.0);
  EXPECT_GT(res.mean_speedup_vs_hyb(), 1.0);
  EXPECT_GT(res.epochs.back().speedup_vs_csr(),
            res.epochs.front().speedup_vs_csr());
}

TEST(DynamicPageRank, KatzModeRunsWithSameShape) {
  const DeviceSpec spec = DeviceSpec::gtx_titan().scaled_for_corpus(64);
  Device da(spec), dc(spec), dh(spec);
  const Csr<double> adj = powerlaw_graph(500, 23);
  apps::DynamicPageRankConfig cfg;
  cfg.epochs = 4;
  cfg.hyb_breakeven = 64;
  cfg.app = "katz";
  cfg.katz.alpha = 0.02;
  const auto res =
      apps::dynamic_pagerank(da, dc, dh, adj.transpose(), cfg);
  ASSERT_EQ(res.epochs.size(), 4u);
  for (const auto& e : res.epochs) EXPECT_GT(e.iterations, 0);
  // Warm starts shorten later epochs; ACSR wins them.
  EXPECT_LE(res.epochs.back().iterations, res.epochs.front().iterations);
  EXPECT_GT(res.epochs.back().speedup_vs_csr(), 1.0);
  // Final scores match a cold Katz run on the final matrix.
  const auto [it, scores] = apps::katz_functional<double>(
      res.final_matrix, cfg.katz, nullptr);
  for (std::size_t i = 0; i < scores.size(); ++i)
    EXPECT_NEAR(res.final_scores[i], scores[i], 1e-4);
  (void)it;
}

TEST(DynamicPageRank, FinalScoresMatchStaticRunOnFinalMatrix) {
  Device da(DeviceSpec::gtx_titan());
  Device dc(DeviceSpec::gtx_titan());
  Device dh(DeviceSpec::gtx_titan());
  const Csr<double> m = apps::pagerank_matrix(powerlaw_graph(300, 19));
  apps::DynamicPageRankConfig cfg;
  cfg.epochs = 4;
  cfg.hyb_breakeven = 64;
  const auto res = apps::dynamic_pagerank(da, dc, dh, m, cfg);
  const auto [iters, scores] = apps::pagerank_functional<double>(
      res.final_matrix, cfg.pagerank, nullptr);
  for (std::size_t i = 0; i < scores.size(); ++i)
    EXPECT_NEAR(res.final_scores[i], scores[i], 1e-4);
  (void)iters;
}

}  // namespace
