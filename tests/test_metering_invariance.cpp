// Metering-invariance contract of the executor fast path (docs/PERF.md).
//
// Warp's affine-gather fast path, the epoch-stamped sector caches, and the
// shared-memory arena are pure wall-clock optimisations: they must not
// change a single metered event. This harness runs every registered engine
// over seeded matrices spanning the structural space in five executor
// modes —
//
//   fast        the default: analytic affine gathers, range-checked
//   reference   ACSR_REFERENCE_METERING semantics: the original per-lane
//               probe loops everywhere (set_reference_metering(true))
//   sanitized   fully instrumented (per-access memcheck/racecheck hooks;
//               the fast path is disabled automatically)
//   profiled    ACSR_PROF semantics (set_profiler_enabled(true)): the
//               fast path stays on and the profiler's lane tallies record
//               to the side — metering must be unaffected
//   memoized    ACSR_MEMO semantics (set_memo_enabled(true)): the first
//               simulate captures per-launch metering, the second replays
//               it and re-runs the kernels value-only; the *replayed*
//               iteration is what gets compared here
//   traced      ACSR_SLO semantics (slo::set_slo_enabled(true)): the
//               request-tracing plane records spans to the side —
//               spans are a view of the timeline (docs/SLO.md), so
//               metering must be unaffected
//
// and asserts that the numeric result, every Counters field, and every
// KernelRun roofline term are BIT-identical across the six.
//
// Each run uses a fresh Device: MemoryArena address slices are spaced
// 2^44 bytes apart, so corresponding buffers in consecutive arenas have
// addresses that differ by a multiple of 2^44 — which preserves both the
// 32 B sector offsets and the sector index modulo any power-of-two cache
// way count (<= 256). Identical access sequences therefore meter
// identically on fresh devices, and any divergence observed here is a real
// fast-path bug, not address noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/factory.hpp"
#include "graph/powerlaw.hpp"
#include "graph/rmat.hpp"
#include "prof/prof.hpp"
#include "slo/trace.hpp"
#include "vgpu/device.hpp"
#include "vgpu/memo.hpp"
#include "vgpu/sanitizer.hpp"

namespace {

using acsr::Rng;
using acsr::core::EngineConfig;
using acsr::core::make_engine;
using acsr::mat::Csr;
using acsr::mat::index_t;
using acsr::mat::offset_t;
using acsr::vgpu::Counters;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceSpec;
using acsr::vgpu::KernelRun;
using acsr::vgpu::Sanitizer;

const char* const kEngines[] = {
    "csr-scalar", "csr-vector", "csr",  "ell",  "coo",
    "hyb",        "brc",        "bccoo", "tcoo", "sic",
    "bcsr",       "sell",       "merge-csr", "acsr", "acsr-binning",
};

Csr<double> rmat_matrix(int scale, double epv, Rng& rng) {
  acsr::graph::RmatParams p;
  p.scale = scale;
  p.edges_per_vertex = epv;
  p.seed = rng.next_u64();
  Csr<double> m = Csr<double>::from_coo(acsr::graph::rmat(p));
  for (auto& v : m.vals) v = rng.next_double(0.5, 1.5);
  return m;
}

Csr<double> powerlaw(index_t rows, index_t cols, double mean, Rng& rng) {
  acsr::graph::PowerLawSpec s;
  s.rows = rows;
  s.cols = cols;
  s.mean_nnz_per_row = mean;
  s.alpha = 1.6;
  s.max_row_nnz = std::max<offset_t>(1, cols / 2);
  s.tail_rows = 2;
  s.seed = rng.next_u64();
  Csr<double> m = acsr::graph::powerlaw_matrix(s);
  for (auto& v : m.vals) v = rng.next_double(0.5, 1.5);
  return m;
}

/// A dense row past the dynamic-parallelism bin threshold plus sparse
/// rest: exercises ACSR's child launches through all three modes.
Csr<double> dense_row_matrix(index_t n, int dense_nnz, Rng& rng) {
  Csr<double> m;
  m.rows = n;
  m.cols = n;
  m.row_off.assign(1, 0);
  const auto dense_at = static_cast<index_t>(n / 3);
  std::vector<index_t> cols;
  for (index_t r = 0; r < n; ++r) {
    const int want = r == dense_at ? dense_nnz
                                   : static_cast<int>(rng.next_below(4));
    cols.clear();
    while (static_cast<int>(cols.size()) < want) {
      cols.push_back(static_cast<index_t>(
          rng.next_below(static_cast<std::uint64_t>(n))));
      std::sort(cols.begin(), cols.end());
      cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    }
    for (index_t c : cols) {
      m.col_idx.push_back(c);
      m.vals.push_back(rng.next_double(0.5, 1.5));
    }
    m.row_off.push_back(static_cast<offset_t>(m.col_idx.size()));
  }
  return m;
}

Csr<double> all_empty(index_t rows, index_t cols) {
  Csr<double> m;
  m.rows = rows;
  m.cols = cols;
  m.row_off.assign(static_cast<std::size_t>(rows) + 1, 0);
  return m;
}

std::vector<Csr<double>> make_matrices(std::uint64_t seed) {
  const Rng root(seed);
  std::vector<Csr<double>> ms;
  Rng r1 = root.split(1);
  ms.push_back(rmat_matrix(6, 4.0, r1));
  Rng r2 = root.split(2);
  ms.push_back(powerlaw(180, 160, 5.0, r2));
  Rng r3 = root.split(3);
  ms.push_back(dense_row_matrix(300, 300, r3));
  ms.push_back(all_empty(17, 9));
  Rng r4 = root.split(4);
  ms.push_back(powerlaw(40, 2000, 30.0, r4));  // wide rows, long gathers
  return ms;
}

#define EXPECT_FIELD_EQ(field) \
  EXPECT_EQ(a.field, b.field) << "counter '" #field "' diverges"

void expect_counters_identical(const Counters& a, const Counters& b) {
  EXPECT_FIELD_EQ(blocks);
  EXPECT_FIELD_EQ(warps);
  EXPECT_FIELD_EQ(issue_cycles);
  EXPECT_FIELD_EQ(sp_flops);
  EXPECT_FIELD_EQ(dp_flops);
  EXPECT_FIELD_EQ(gmem_requests);
  EXPECT_FIELD_EQ(gmem_transactions);
  EXPECT_FIELD_EQ(gmem_bytes);
  EXPECT_FIELD_EQ(tex_requests);
  EXPECT_FIELD_EQ(tex_transactions);
  EXPECT_FIELD_EQ(tex_bytes);
  EXPECT_FIELD_EQ(shuffle_ops);
  EXPECT_FIELD_EQ(smem_accesses);
  EXPECT_FIELD_EQ(atomic_ops);
  EXPECT_FIELD_EQ(atomic_conflicts);
  EXPECT_FIELD_EQ(child_launches);
  EXPECT_FIELD_EQ(child_blocks);
}

void expect_run_identical(const KernelRun& a, const KernelRun& b) {
  expect_counters_identical(a.counters, b.counters);
  // Roofline terms: derived purely from counters + spec, so they must be
  // bit-equal doubles, not merely close.
  EXPECT_EQ(a.issue_s, b.issue_s);
  EXPECT_EQ(a.flop_s, b.flop_s);
  EXPECT_EQ(a.memory_s, b.memory_s);
  EXPECT_EQ(a.latency_s, b.latency_s);
  EXPECT_EQ(a.launch_s, b.launch_s);
  EXPECT_EQ(a.dp_s, b.dp_s);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
  EXPECT_EQ(a.duration_s, b.duration_s);
}

#undef EXPECT_FIELD_EQ

struct ModeResult {
  bool skipped = false;  // ELL refusing a pathological shape
  double duration = 0.0;
  std::vector<double> y;
  KernelRun run;
};

enum class Mode { kFast, kReference, kSanitized, kProfiled, kMemoized,
                  kTraced };

ModeResult run_mode(const Csr<double>& a, const char* engine_name,
                    const std::vector<double>& x, Mode mode) {
  Sanitizer& san = Sanitizer::instance();
  acsr::vgpu::set_reference_metering(mode == Mode::kReference);
  if (mode == Mode::kSanitized) {
    san.clear();
    san.set_enabled(true);
  }
  if (mode == Mode::kProfiled) {
    acsr::prof::Profiler::instance().clear();
    acsr::prof::set_profiler_enabled(true);
  }
  if (mode == Mode::kMemoized) {
    acsr::vgpu::memo::MemoCache::instance().clear();
    acsr::vgpu::memo::MemoCache::instance().reset_stats();
    acsr::vgpu::memo::set_memo_enabled(true);
  }
  if (mode == Mode::kTraced) {
    acsr::slo::Tracer::instance().clear();
    acsr::slo::set_slo_enabled(true);
  }

  ModeResult res;
  {
    Device dev(DeviceSpec::gtx_titan());
    EngineConfig cfg;
    cfg.hyb_breakeven = 64;
    try {
      auto engine = make_engine<double>(engine_name, dev, a, cfg);
      res.duration = engine->simulate(x, res.y);
      if (mode == Mode::kMemoized) {
        // The first simulate captured the launch metering; the second
        // replays it (kernels re-run value-only, metering comes from the
        // cache). The replayed iteration is the one under test.
        res.y.clear();
        res.duration = engine->simulate(x, res.y);
      }
      res.run = engine->report().last_run;
    } catch (const acsr::InputError&) {
      EXPECT_STREQ(engine_name, "ell");
      res.skipped = true;
    }
  }

  acsr::vgpu::set_reference_metering(false);
  if (mode == Mode::kSanitized) {
    EXPECT_TRUE(san.reports().empty())
        << san.reports().size() << " sanitizer findings; first: "
        << san.reports().front().message;
    san.set_enabled(false);
    san.clear();
  }
  if (mode == Mode::kProfiled) {
    // ACSR on an all-empty matrix issues no kernels at all (every bin and
    // the DP work list are empty), so only demand samples when there is
    // work to launch.
    EXPECT_TRUE(res.skipped || a.nnz() == 0 ||
                !acsr::prof::Profiler::instance().launches().empty())
        << "profiler recorded no launches while enabled";
    acsr::prof::set_profiler_enabled(false);
    acsr::prof::Profiler::instance().clear();
  }
  if (mode == Mode::kMemoized) {
    // The second simulate must have been served from the cache — if it
    // missed, this mode silently degenerated into plain re-simulation and
    // the comparison below would prove nothing.
    const auto st = acsr::vgpu::memo::MemoCache::instance().stats();
    EXPECT_TRUE(res.skipped || st.hits >= 1)
        << "memoized replay never hit the cache (misses=" << st.misses
        << " bypasses=" << st.bypasses << ")";
    acsr::vgpu::memo::set_memo_enabled(false);
    acsr::vgpu::memo::MemoCache::instance().clear();
  }
  if (mode == Mode::kTraced) {
    acsr::slo::set_slo_enabled(false);
    acsr::slo::Tracer::instance().clear();
  }
  return res;
}

TEST(MeteringInvariance, FastReferenceAndSanitizedPathsAreBitIdentical) {
  const auto matrices = make_matrices(/*seed=*/2014);
  const Rng root(0x5eed);

  std::size_t compared = 0;
  for (std::size_t mi = 0; mi < matrices.size(); ++mi) {
    const Csr<double>& a = matrices[mi];
    a.validate();
    Rng xrng = root.split(mi + 1);
    std::vector<double> x(static_cast<std::size_t>(a.cols));
    for (auto& v : x) v = xrng.next_double(0.5, 1.5);

    for (const char* engine_name : kEngines) {
      SCOPED_TRACE("matrix #" + std::to_string(mi) + " engine " +
                   engine_name);
      const ModeResult fast = run_mode(a, engine_name, x, Mode::kFast);
      const ModeResult ref = run_mode(a, engine_name, x, Mode::kReference);
      const ModeResult san = run_mode(a, engine_name, x, Mode::kSanitized);
      const ModeResult prof = run_mode(a, engine_name, x, Mode::kProfiled);
      const ModeResult memo = run_mode(a, engine_name, x, Mode::kMemoized);
      const ModeResult traced = run_mode(a, engine_name, x, Mode::kTraced);
      ASSERT_EQ(fast.skipped, ref.skipped);
      ASSERT_EQ(fast.skipped, san.skipped);
      ASSERT_EQ(fast.skipped, prof.skipped);
      ASSERT_EQ(fast.skipped, memo.skipped);
      ASSERT_EQ(fast.skipped, traced.skipped);
      if (fast.skipped) continue;

      // Numeric result: the fast path reads the same elements in the same
      // per-lane order, so y must match to the last bit.
      ASSERT_EQ(fast.y.size(), ref.y.size());
      ASSERT_EQ(fast.y.size(), san.y.size());
      ASSERT_EQ(fast.y.size(), prof.y.size());
      ASSERT_EQ(fast.y.size(), memo.y.size());
      ASSERT_EQ(fast.y.size(), traced.y.size());
      for (std::size_t r = 0; r < fast.y.size(); ++r) {
        EXPECT_EQ(fast.y[r], ref.y[r]) << "y diverges at row " << r;
        EXPECT_EQ(fast.y[r], san.y[r]) << "y diverges at row " << r;
        EXPECT_EQ(fast.y[r], prof.y[r]) << "y diverges at row " << r;
        EXPECT_EQ(fast.y[r], memo.y[r]) << "y diverges at row " << r;
        EXPECT_EQ(fast.y[r], traced.y[r]) << "y diverges at row " << r;
      }

      EXPECT_EQ(fast.duration, ref.duration);
      EXPECT_EQ(fast.duration, san.duration);
      EXPECT_EQ(fast.duration, prof.duration);
      EXPECT_EQ(fast.duration, memo.duration);
      EXPECT_EQ(fast.duration, traced.duration);
      {
        SCOPED_TRACE("fast vs reference");
        const KernelRun &a_run = fast.run, &b_run = ref.run;
        expect_run_identical(a_run, b_run);
      }
      {
        SCOPED_TRACE("fast vs sanitized");
        expect_run_identical(fast.run, san.run);
      }
      {
        SCOPED_TRACE("fast vs profiled");
        expect_run_identical(fast.run, prof.run);
      }
      {
        SCOPED_TRACE("fast vs memoized replay");
        expect_run_identical(fast.run, memo.run);
      }
      {
        SCOPED_TRACE("fast vs traced");
        expect_run_identical(fast.run, traced.run);
      }
      ++compared;
    }
  }
  // The contract must have been exercised broadly, not vacuously skipped.
  EXPECT_GE(compared, matrices.size() * 14);
  std::cout << "[invariance] " << compared << " engine/matrix cells over "
            << matrices.size() << " matrices, 6 modes each\n";
}

/// The raw warp-level primitives, pinned directly: affine loads/stores at
/// every stride the fast path accepts (0, partial-sector, exactly one
/// sector) plus the rejection cases (negative, > one sector, non-affine),
/// compared fast-vs-reference at counter granularity.
TEST(MeteringInvariance, WarpPrimitivesMatchAtEveryStride) {
  using acsr::vgpu::LaneArray;

  struct Pattern {
    const char* name;
    long long base, step;
    int live;  // active prefix lanes
  };
  const Pattern patterns[] = {
      {"broadcast (step 0)", 40, 0, 32},   {"unit stride", 3, 1, 32},
      {"unit stride ragged", 5, 1, 19},    {"stride 2", 0, 2, 32},
      {"stride 4 (sector)", 8, 4, 32},     {"stride 5 (reject)", 0, 5, 32},
      {"descending (reject)", 200, -3, 32}, {"single lane", 77, 9, 1},
  };

  for (const Pattern& p : patterns) {
    SCOPED_TRACE(p.name);
    KernelRun runs[2];
    std::vector<double> outs[2];
    for (int mode = 0; mode < 2; ++mode) {
      acsr::vgpu::set_reference_metering(mode == 1);
      Device dev(DeviceSpec::gtx_titan());
      auto src = dev.alloc<double>(4096, "src");
      for (std::size_t i = 0; i < 4096; ++i)
        src.host()[i] = static_cast<double>(i) * 0.5;
      auto dst = dev.alloc<double>(4096, "dst");
      dst.host().assign(4096, 0.0);
      auto s = src.cspan();
      auto d = dst.span();
      acsr::vgpu::LaunchConfig cfg;
      cfg.name = "stride_probe";
      cfg.block_dim = 64;
      cfg.grid_dim = 2;
      runs[mode] = dev.launch_warps(cfg, [&](acsr::vgpu::Warp& w) {
        const auto idx =
            LaneArray<long long>::iota(p.base, p.step);
        const acsr::vgpu::Mask m = acsr::vgpu::first_lanes(p.live);
        const auto v = w.load(s, idx, m);
        const auto t = w.load_tex(s, idx, m);
        LaneArray<double> sum;
        for (int l = 0; l < acsr::vgpu::kWarpSize; ++l)
          sum[l] = v[l] + t[l];
        w.store(d, idx, sum, m);
      });
      outs[mode] = dst.host();
    }
    acsr::vgpu::set_reference_metering(false);
    expect_run_identical(runs[0], runs[1]);
    EXPECT_EQ(outs[0], outs[1]);
  }

  // Non-affine gather (hash scatter): must take the reference loop on both
  // modes and still agree.
  KernelRun runs[2];
  for (int mode = 0; mode < 2; ++mode) {
    acsr::vgpu::set_reference_metering(mode == 1);
    Device dev(DeviceSpec::gtx_titan());
    auto src = dev.alloc<double>(4096, "src");
    src.host().assign(4096, 1.0);
    auto s = src.cspan();
    acsr::vgpu::LaunchConfig cfg;
    cfg.name = "scatter_probe";
    cfg.block_dim = 64;
    cfg.grid_dim = 2;
    runs[mode] = dev.launch_warps(cfg, [&](acsr::vgpu::Warp& w) {
      const auto idx = w.global_threads().map(
          [](long long t) { return (t * 2654435761LL + 7) & 4095; });
      const auto v = w.load(s, idx, w.active_mask());
      w.count_flops(w.active_mask(), static_cast<int>(v[0] > 0.0), true);
    });
  }
  acsr::vgpu::set_reference_metering(false);
  expect_run_identical(runs[0], runs[1]);
}

}  // namespace
