// Sparse container semantics: construction, conversion round-trips,
// invariants, normalisations, the HYB split heuristic, and Matrix Market
// I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/powerlaw.hpp"
#include "mat/csr.hpp"
#include "mat/dia.hpp"
#include "mat/ell.hpp"
#include "mat/hyb.hpp"
#include "mat/mm_io.hpp"

namespace {

using namespace acsr::mat;
using acsr::vgpu::HostModel;

Coo<double> sample_coo() {
  Coo<double> c;
  c.rows = 4;
  c.cols = 5;
  c.push(2, 1, 3.0);
  c.push(0, 0, 1.0);
  c.push(0, 4, 2.0);
  c.push(2, 1, 0.5);  // duplicate
  c.push(3, 3, 4.0);
  return c;
}

TEST(Coo, SortAndDedup) {
  Coo<double> c = sample_coo();
  EXPECT_FALSE(c.is_sorted());
  c.sort();
  EXPECT_TRUE(c.is_sorted());
  c.sum_duplicates();
  EXPECT_EQ(c.nnz(), 4);
  // The duplicate (2,1) merged to 3.5.
  bool found = false;
  for (std::size_t i = 0; i < c.vals.size(); ++i)
    if (c.row_idx[i] == 2 && c.col_idx[i] == 1) {
      EXPECT_DOUBLE_EQ(c.vals[i], 3.5);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Coo, OutOfRangeEntryRejected) {
  Coo<double> c;
  c.rows = 2;
  c.cols = 2;
  EXPECT_THROW(c.push(2, 0, 1.0), acsr::InvariantError);
  EXPECT_THROW(c.push(0, -1, 1.0), acsr::InvariantError);
}

TEST(Coo, SortChargesHostModel) {
  Coo<double> c = sample_coo();
  HostModel hm;
  c.sort(&hm);
  EXPECT_GT(hm.seconds(), 0.0);
}

TEST(Csr, FromCooRoundTrip) {
  Coo<double> c = sample_coo();
  c.sort();
  c.sum_duplicates();
  const Csr<double> m = Csr<double>::from_coo(c);
  m.validate();
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.row_nnz(0), 2);
  EXPECT_EQ(m.row_nnz(1), 0);
  const Coo<double> back = m.to_coo();
  EXPECT_EQ(back.row_idx, c.row_idx);
  EXPECT_EQ(back.col_idx, c.col_idx);
  EXPECT_EQ(back.vals, c.vals);
}

TEST(Csr, FromUnsortedCooSortsACopy) {
  const Coo<double> c = sample_coo();  // unsorted, with duplicate kept
  const Csr<double> m = Csr<double>::from_coo(c);
  m.validate();
  EXPECT_TRUE(m.rows_sorted() || m.nnz() == 5);  // duplicate cols allowed here
  EXPECT_EQ(m.nnz(), 5);
}

TEST(Csr, SpmvMatchesManual) {
  Coo<double> c = sample_coo();
  c.sort();
  c.sum_duplicates();
  const Csr<double> m = Csr<double>::from_coo(c);
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  m.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0 * 1 + 2.0 * 5);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 3.5 * 2);
  EXPECT_DOUBLE_EQ(y[3], 4.0 * 4);
}

TEST(Csr, TransposeIsInvolution) {
  acsr::graph::PowerLawSpec s;
  s.rows = 300;
  s.cols = 200;
  s.mean_nnz_per_row = 5.0;
  s.alpha = 1.8;
  s.max_row_nnz = 50;
  s.seed = 4;
  const Csr<double> a = acsr::graph::powerlaw_matrix(s);
  const Csr<double> att = a.transpose().transpose();
  EXPECT_EQ(att.row_off, a.row_off);
  EXPECT_EQ(att.col_idx, a.col_idx);
  EXPECT_EQ(att.vals, a.vals);

  // (A^T x)_j == sum_i A_ij x_i
  std::vector<double> x(static_cast<std::size_t>(a.rows));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0 + (i % 7);
  std::vector<double> yt;
  a.transpose().spmv(x, yt);
  std::vector<double> ref(static_cast<std::size_t>(a.cols), 0.0);
  for (index_t r = 0; r < a.rows; ++r)
    for (offset_t i = a.row_off[static_cast<std::size_t>(r)];
         i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i)
      ref[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(i)])] +=
          a.vals[static_cast<std::size_t>(i)] *
          x[static_cast<std::size_t>(r)];
  for (std::size_t j = 0; j < ref.size(); ++j)
    EXPECT_NEAR(yt[j], ref[j], 1e-12);
}

TEST(Csr, RowNormalizeMakesRowsStochastic) {
  Coo<double> c = sample_coo();
  c.sort();
  c.sum_duplicates();
  Csr<double> m = Csr<double>::from_coo(c);
  m.row_normalize();
  for (index_t r = 0; r < m.rows; ++r) {
    double s = 0;
    for (offset_t i = m.row_off[static_cast<std::size_t>(r)];
         i < m.row_off[static_cast<std::size_t>(r) + 1]; ++i)
      s += m.vals[static_cast<std::size_t>(i)];
    if (m.row_nnz(r) > 0) {
      EXPECT_NEAR(s, 1.0, 1e-12);
    }
  }
}

TEST(Csr, ColNormalizeMakesColsStochastic) {
  Coo<double> c = sample_coo();
  c.sort();
  c.sum_duplicates();
  Csr<double> m = Csr<double>::from_coo(c);
  m.col_normalize();
  std::vector<double> s(static_cast<std::size_t>(m.cols), 0.0);
  for (std::size_t i = 0; i < m.vals.size(); ++i)
    s[static_cast<std::size_t>(m.col_idx[i])] += m.vals[i];
  for (double v : s) EXPECT_TRUE(v == 0.0 || std::abs(v - 1.0) < 1e-12);
}

TEST(Csr, RowStatsMatchDefinition) {
  Coo<double> c = sample_coo();
  c.sort();
  c.sum_duplicates();
  const Csr<double> m = Csr<double>::from_coo(c);
  const RowStats st = m.row_stats();
  EXPECT_DOUBLE_EQ(st.mean, 1.0);  // 4 nnz over 4 rows
  EXPECT_EQ(st.max, 2);
  EXPECT_EQ(st.histogram.total(), 4u);  // one bucket entry per row
}

TEST(Csr, ValidateCatchesCorruption) {
  Coo<double> c = sample_coo();
  c.sort();
  c.sum_duplicates();
  Csr<double> m = Csr<double>::from_coo(c);
  Csr<double> bad = m;
  bad.col_idx[0] = 99;  // out of range
  EXPECT_THROW(bad.validate(), acsr::InvariantError);
  bad = m;
  bad.row_off[1] = 100;
  EXPECT_THROW(bad.validate(), acsr::InvariantError);
}

TEST(Ell, PadsToWidthAndComputes) {
  Coo<double> c = sample_coo();
  c.sort();
  c.sum_duplicates();
  const Csr<double> m = Csr<double>::from_coo(c);
  HostModel hm;
  const Ell<double> e = Ell<double>::from_csr(m, &hm);
  EXPECT_EQ(e.width, 2);
  EXPECT_EQ(e.nnz(), m.nnz());
  EXPECT_GT(e.padding_ratio(), 0.0);
  EXPECT_GT(hm.seconds(), 0.0);
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y_ell, y_csr;
  e.spmv(x, y_ell);
  m.spmv(x, y_csr);
  EXPECT_EQ(y_ell, y_csr);
}

TEST(Ell, RejectsExplosiveExpansion) {
  Csr<double> m;
  m.rows = 1000;
  m.cols = 1000;
  m.row_off.assign(1001, 0);
  // One row with 1000 nnz, everything else 1 nnz.
  for (int c = 0; c < 1000; ++c) {
    m.col_idx.push_back(c);
    m.vals.push_back(1.0);
  }
  m.row_off[1] = 1000;
  for (int r = 2; r <= 1000; ++r) {
    m.col_idx.push_back(0);
    m.vals.push_back(1.0);
    m.row_off[static_cast<std::size_t>(r)] =
        m.row_off[static_cast<std::size_t>(r) - 1] + 1;
  }
  m.validate();
  EXPECT_THROW(Ell<double>::from_csr(m), acsr::InputError);
}

TEST(Hyb, ChooseKHeuristic) {
  // 100 rows with 4 nnz, 10 rows with 50 nnz; breakeven population 30
  // means the widest width covering >= max(30, 110/3=36) rows is 4.
  Csr<double> m;
  m.rows = 110;
  m.cols = 200;
  m.row_off.assign(111, 0);
  offset_t pos = 0;
  for (int r = 0; r < 110; ++r) {
    const int n = r < 100 ? 4 : 50;
    for (int j = 0; j < n; ++j) {
      m.col_idx.push_back(j);
      m.vals.push_back(1.0);
    }
    pos += n;
    m.row_off[static_cast<std::size_t>(r) + 1] = pos;
  }
  m.validate();
  EXPECT_EQ(Hyb<double>::choose_k(m, 30), 4);
  // The rows/3 floor keeps the threshold at 36 even with a tiny breakeven.
  EXPECT_EQ(Hyb<double>::choose_k(m, 5), 4);

  // With few enough rows that rows/3 < breakeven, the wide population can
  // satisfy a small breakeven and k grows to the wide width.
  Csr<double> small;
  small.rows = 12;
  small.cols = 100;
  small.row_off.assign(13, 0);
  offset_t p2 = 0;
  for (int r = 0; r < 12; ++r) {
    const int n = r < 4 ? 2 : 50;
    for (int j = 0; j < n; ++j) {
      small.col_idx.push_back(j);
      small.vals.push_back(1.0);
    }
    p2 += n;
    small.row_off[static_cast<std::size_t>(r) + 1] = p2;
  }
  small.validate();
  EXPECT_EQ(Hyb<double>::choose_k(small, 6), 50);
  EXPECT_EQ(Hyb<double>::choose_k(small, 10), 2);
}

TEST(Hyb, SplitsAndComputes) {
  acsr::graph::PowerLawSpec s;
  s.rows = 500;
  s.cols = 500;
  s.mean_nnz_per_row = 6.0;
  s.alpha = 1.6;
  s.max_row_nnz = 200;
  s.seed = 9;
  const Csr<double> m = acsr::graph::powerlaw_matrix(s);
  HostModel hm;
  const Hyb<double> h = Hyb<double>::from_csr(m, &hm, 64);
  EXPECT_EQ(h.nnz(), m.nnz());
  EXPECT_GT(h.coo.nnz(), 0);  // the tail spilled
  EXPECT_TRUE(h.coo.is_sorted());
  std::vector<double> x(500);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.5 + (i % 5);
  std::vector<double> yh, yc;
  h.spmv(x, yh);
  m.spmv(x, yc);
  for (std::size_t r = 0; r < yh.size(); ++r) EXPECT_NEAR(yh[r], yc[r], 1e-9);
}

TEST(Dia, BandedMatrixRoundTrip) {
  // Tridiagonal matrix.
  Csr<double> m;
  m.rows = 50;
  m.cols = 50;
  m.row_off.assign(51, 0);
  for (int r = 0; r < 50; ++r) {
    for (int c = std::max(0, r - 1); c <= std::min(49, r + 1); ++c) {
      m.col_idx.push_back(c);
      m.vals.push_back(r == c ? 2.0 : -1.0);
    }
    m.row_off[static_cast<std::size_t>(r) + 1] =
        static_cast<offset_t>(m.col_idx.size());
  }
  m.validate();
  const Dia<double> d = Dia<double>::from_csr(m);
  EXPECT_EQ(d.offsets.size(), 3u);
  std::vector<double> x(50, 1.0), yd, yc;
  d.spmv(x, yd);
  m.spmv(x, yc);
  EXPECT_EQ(yd, yc);
}

TEST(Dia, RejectsUnstructured) {
  acsr::graph::PowerLawSpec s;
  s.rows = 200;
  s.cols = 200;
  s.mean_nnz_per_row = 5.0;
  s.alpha = 1.8;
  s.max_row_nnz = 40;
  s.seed = 2;
  const Csr<double> m = acsr::graph::powerlaw_matrix(s);
  EXPECT_THROW(Dia<double>::from_csr(m, 16), acsr::InputError);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  Coo<double> c = sample_coo();
  c.sort();
  c.sum_duplicates();
  std::stringstream ss;
  write_matrix_market(c, ss);
  const Coo<double> back = read_matrix_market(ss);
  EXPECT_EQ(back.rows, c.rows);
  EXPECT_EQ(back.cols, c.cols);
  EXPECT_EQ(back.row_idx, c.row_idx);
  EXPECT_EQ(back.col_idx, c.col_idx);
  EXPECT_EQ(back.vals, c.vals);
}

TEST(MatrixMarket, SymmetricAndPattern) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const Coo<double> m = read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 3);  // (1,0),(0,1) mirrored + (2,2) diagonal once
  for (double v : m.vals) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(MatrixMarket, RejectsGarbage) {
  std::stringstream a("not a matrix\n");
  EXPECT_THROW(read_matrix_market(a), acsr::InputError);
  std::stringstream b("%%MatrixMarket matrix array real general\n1 1\n1\n");
  EXPECT_THROW(read_matrix_market(b), acsr::InputError);
  std::stringstream trunc(
      "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 5\n");
  EXPECT_THROW(read_matrix_market(trunc), acsr::InputError);
}

TEST(MatrixMarket, RejectsNonFiniteValues) {
  for (const char* bad : {"nan", "inf", "-inf", "1e999"}) {
    std::stringstream ss("%%MatrixMarket matrix coordinate real general\n"
                         "2 2 1\n1 1 " +
                         std::string(bad) + "\n");
    EXPECT_THROW(read_matrix_market(ss), acsr::InputError) << bad;
  }
}

TEST(MatrixMarket, RejectsMalformedNumericFields) {
  // A malformed value must be a parse error, not a silent default.
  std::stringstream v("%%MatrixMarket matrix coordinate real general\n"
                      "2 2 1\n1 1 x\n");
  EXPECT_THROW(read_matrix_market(v), acsr::InputError);
  std::stringstream c("%%MatrixMarket matrix coordinate real general\n"
                      "2 2 1\n1 oops 3.5\n");
  EXPECT_THROW(read_matrix_market(c), acsr::InputError);
  std::stringstream t("%%MatrixMarket matrix coordinate real general\n"
                      "2 2 1\n1 1 3.5 extra\n");
  EXPECT_THROW(read_matrix_market(t), acsr::InputError);
  std::stringstream d("%%MatrixMarket matrix coordinate real general\n"
                      "2 oops 1\n1 1 3.5\n");
  EXPECT_THROW(read_matrix_market(d), acsr::InputError);
}

TEST(MatrixMarket, ParseErrorsCarryLineNumbers) {
  std::stringstream ss("%%MatrixMarket matrix coordinate real general\n"
                       "% padding comment\n"
                       "2 2 2\n"
                       "1 1 1.5\n"
                       "2 2 bogus\n");
  try {
    read_matrix_market(ss);
    FAIL() << "expected InputError";
  } catch (const acsr::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << e.what();
  }
}

TEST(HitsMatrix, CombinedStructure) {
  Coo<double> c;
  c.rows = 3;
  c.cols = 3;
  c.push(0, 1, 1.0);
  c.push(1, 2, 1.0);
  const Csr<double> a = Csr<double>::from_coo(c);
  const Csr<double> h = make_hits_matrix(a);
  h.validate();
  EXPECT_EQ(h.rows, 6);
  EXPECT_EQ(h.nnz(), 2 * a.nnz());
  // [a;h]' = [[0,A^T],[A,0]] [a;h]: authority of node 1 = hub of node 0.
  std::vector<double> v{0, 0, 0, 1, 2, 3}, y;  // a = 0, h = (1,2,3)
  h.spmv(v, y);
  EXPECT_DOUBLE_EQ(y[1], 1.0);  // A^T h at node 1 <- edge 0->1 x h[0]
  EXPECT_DOUBLE_EQ(y[2], 2.0);  // edge 1->2 x h[1]
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

}  // namespace
