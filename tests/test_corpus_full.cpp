// Whole-corpus validation at a cheap scale: every Table-I entry builds,
// satisfies its shape contract (mu near target, power-law tails, square /
// rectangular as specified), scales consistently, and runs through ACSR.
#include <gtest/gtest.h>

#include "core/acsr_engine.hpp"
#include "graph/corpus.hpp"

namespace {

using namespace acsr;

class CorpusEntrySweep
    : public ::testing::TestWithParam<graph::CorpusEntry> {};

TEST_P(CorpusEntrySweep, BuildsWithContractedShape) {
  const auto& e = GetParam();
  const auto m = graph::build_matrix(e, 512, 42);
  m.validate();
  EXPECT_TRUE(m.rows_sorted());
  const auto st = m.row_stats();
  // mu near the paper target; at 1/512 scale the injected tail rows can
  // shift the mean of the tiniest matrices by a little over one nnz.
  EXPECT_NEAR(st.mean, e.paper_mu, std::max(0.4 * e.paper_mu, 1.5))
      << e.abbrev;
  if (e.power_law) {
    EXPECT_GT(st.stddev, 0.6 * st.mean) << e.abbrev;
    EXPECT_GT(static_cast<double>(st.max), 4.0 * st.mean) << e.abbrev;
  }
  if (e.paper_rows == e.paper_cols) EXPECT_EQ(m.rows, m.cols);
  else EXPECT_NE(m.rows, m.cols);
}

TEST_P(CorpusEntrySweep, DeterministicAcrossBuilds) {
  const auto& e = GetParam();
  const auto a = graph::build_matrix(e, 512, 42);
  const auto b = graph::build_matrix(e, 512, 42);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.vals, b.vals);
  // A different seed decorrelates.
  const auto c = graph::build_matrix(e, 512, 43);
  EXPECT_NE(a.col_idx, c.col_idx);
}

TEST_P(CorpusEntrySweep, ScalesMonotonically) {
  const auto& e = GetParam();
  const auto small = graph::build_matrix(e, 1024, 42);
  const auto big = graph::build_matrix(e, 256, 42);
  EXPECT_GE(big.rows, small.rows);
  EXPECT_GE(big.nnz(), small.nnz());
}

TEST_P(CorpusEntrySweep, AcsrRunsCorrectly) {
  const auto& e = GetParam();
  const auto m = graph::build_matrix(e, 512, 42);
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(512));
  core::AcsrEngine<double> engine(dev, m);
  std::vector<double> x(static_cast<std::size_t>(m.cols), 1.0), y, ref;
  engine.simulate(x, y);
  m.spmv(x, ref);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(y[i], ref[i], 1e-9 * std::max(1.0, std::abs(ref[i])))
        << e.abbrev << " row " << i;
  // Every non-empty row is claimed by a bin or the DP list.
  const auto& b = engine.binning();
  std::size_t covered = b.dp_rows.size();
  for (const auto& bin : b.bins) covered += bin.size();
  std::size_t nonempty = 0;
  for (mat::index_t r = 0; r < m.rows; ++r)
    if (m.row_nnz(r) > 0) ++nonempty;
  EXPECT_EQ(covered, nonempty) << e.abbrev;
}

INSTANTIATE_TEST_SUITE_P(
    AllSeventeen, CorpusEntrySweep,
    ::testing::ValuesIn(acsr::graph::table1_corpus()),
    [](const auto& tpi) { return tpi.param.abbrev; });

}  // namespace
