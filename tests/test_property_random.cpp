// Randomised property sweep: across many generator seeds and shapes,
// every engine agrees with the reference, ACSR's bins always partition the
// non-empty rows, and repeated dynamic updates keep the incremental device
// state bit-identical to the host truth.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "core/incremental_csr.hpp"
#include "graph/dynamic.hpp"
#include "graph/powerlaw.hpp"
#include "mat/ops.hpp"

namespace {

using namespace acsr;

mat::Csr<double> random_matrix(std::uint64_t seed) {
  Rng r(seed);
  graph::PowerLawSpec s;
  s.rows = 100 + static_cast<mat::index_t>(r.next_below(900));
  s.cols = r.next_bool(0.8)
               ? s.rows
               : 100 + static_cast<mat::index_t>(r.next_below(900));
  s.mean_nnz_per_row = 2.0 + r.next_double() * 12.0;
  s.alpha = r.next_bool(0.85) ? 1.3 + r.next_double() : -1.0;
  s.max_row_nnz = 16 + static_cast<mat::offset_t>(
                           r.next_below(static_cast<std::uint64_t>(
                               std::max(17, s.cols / 3))));
  s.hub_fraction = r.next_double() * 0.5;
  s.seed = seed * 31 + 7;
  return graph::powerlaw_matrix(s);
}

class RandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSweep, AllEnginesAgreeWithReference) {
  const auto a = random_matrix(GetParam());
  std::vector<double> x(static_cast<std::size_t>(a.cols));
  Rng r(GetParam() ^ 0xabcdef);
  for (auto& v : x) v = r.next_double(-1.0, 1.0);
  std::vector<double> ref;
  a.spmv(x, ref);

  core::EngineConfig cfg;
  cfg.hyb_breakeven = 32;
  for (const std::string name :
       {"csr", "csr-vector", "coo", "hyb", "brc", "sic", "bcsr", "merge-csr",
        "acsr"}) {
    SCOPED_TRACE(name);
    vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
    auto e = core::make_engine<double>(name, dev, a, cfg);
    std::vector<double> y;
    e->simulate(x, y);
    ASSERT_EQ(y.size(), ref.size());
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], ref[i], 1e-9 * std::max(1.0, std::abs(ref[i])))
          << "row " << i;
  }
}

TEST_P(RandomSweep, BinningPartitionsNonEmptyRows) {
  const auto a = random_matrix(GetParam() + 1000);
  std::vector<mat::offset_t> row_nnz(static_cast<std::size_t>(a.rows));
  mat::offset_t nonempty = 0;
  for (mat::index_t r = 0; r < a.rows; ++r) {
    row_nnz[static_cast<std::size_t>(r)] = a.row_nnz(r);
    if (a.row_nnz(r) > 0) ++nonempty;
  }
  core::BinningOptions opt;
  opt.bin_max = 1 + static_cast<int>(GetParam() % 12);
  opt.row_max = static_cast<int>(GetParam() * 37 % 3000);
  const auto b = core::Binning::build(row_nnz, opt);
  mat::offset_t covered = static_cast<mat::offset_t>(b.dp_rows.size());
  for (std::size_t i = 0; i < b.bins.size(); ++i)
    for (mat::index_t r : b.bins[i]) {
      // Row is in the right bin (when not a DP overflow fallback).
      const auto bucket = Log2Histogram::bucket_of(
          static_cast<std::uint64_t>(row_nnz[static_cast<std::size_t>(r)]));
      ASSERT_EQ(bucket, i);
      ++covered;
    }
  EXPECT_EQ(covered, nonempty);
  EXPECT_LE(static_cast<int>(b.dp_rows.size()), std::max(0, opt.row_max));
}

TEST_P(RandomSweep, IncrementalStateTracksHostExactly) {
  mat::Csr<double> truth = random_matrix(GetParam() + 2000);
  if (truth.rows != truth.cols) return;  // updates need square-ish ok anyway
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  core::IncrementalCsr<double> inc(dev, truth, 0.3, 0.15);
  for (int epoch = 0; epoch < 4; ++epoch) {
    graph::UpdateParams p;
    p.seed = GetParam() * 97 + static_cast<std::uint64_t>(epoch);
    p.row_fraction = 0.05 + 0.05 * static_cast<double>(epoch % 3);
    const auto batch = graph::generate_update(truth, p);
    graph::apply_update_host(truth, batch);
    inc.apply_update(batch);
    const auto got = inc.to_csr();
    ASSERT_TRUE(mat::approx_equal(got, truth, 0.0))
        << "epoch " << epoch << ": device state diverged, delta = "
        << mat::structural_delta(got, truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
