// Sanitizer defect-detection tests: each memcheck/racecheck defect class is
// deliberately triggered and must be caught with the right kind, buffer
// name, and lane/warp/block/grid provenance. The negative tests pin down
// the zero-false-positive guarantees the differential fuzz harness relies
// on: atomics don't race, parent->child DP writes are ordered, sequential
// launches are independent epochs, and clean engines produce no reports.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/factory.hpp"
#include "graph/powerlaw.hpp"
#include "vgpu/device.hpp"
#include "vgpu/sanitizer.hpp"

namespace {

using acsr::InvariantError;
using acsr::core::EngineConfig;
using acsr::core::make_engine;
using acsr::vgpu::Block;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceSpec;
using acsr::vgpu::DeviceSpan;
using acsr::vgpu::kFullMask;
using acsr::vgpu::KernelRun;
using acsr::vgpu::lane_bit;
using acsr::vgpu::LaneArray;
using acsr::vgpu::LaunchConfig;
using acsr::vgpu::Mask;
using acsr::vgpu::Sanitizer;
using acsr::vgpu::SanKind;
using acsr::vgpu::SanReport;
using acsr::vgpu::Warp;

/// Enables the sanitizer in record mode for the test body and restores the
/// default (disabled, no findings) state afterwards, so these tests compose
/// with the rest of the suite whether or not ACSR_SANITIZE is set.
class SanitizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Sanitizer& s = Sanitizer::instance();
    s.clear();
    s.set_enabled(true);
    s.set_halt_on_error(false);
  }
  void TearDown() override {
    Sanitizer& s = Sanitizer::instance();
    s.set_enabled(false);
    s.clear();
  }

  static LaunchConfig one_warp(const std::string& name, long long grid = 1) {
    LaunchConfig cfg;
    cfg.grid_dim = grid;
    cfg.block_dim = 32;
    cfg.name = name;
    return cfg;
  }
};

// --- memcheck: out-of-bounds ------------------------------------------------

TEST_F(SanitizerTest, SpanIndexOutOfBoundsNamesBuffer) {
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(4, "payload");
  buf.host() = {1.0, 2.0, 3.0, 4.0};

  try {
    dev.launch_warps(one_warp("oob_kernel"), [&](Warp& w) {
      w.load(buf.cspan(), LaneArray<long long>::filled(7), lane_bit(0));
    });
    FAIL() << "index past the span end must throw";
  } catch (const InvariantError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("out of bounds"), std::string::npos) << msg;
    EXPECT_NE(msg.find("payload"), std::string::npos)
        << "diagnostic must name the buffer: " << msg;
  }
}

TEST_F(SanitizerTest, ForgedSpanOverrunIsFatal) {
  // A span whose size lies about the allocation (the bug class bounds
  // checks can't see): in-span index, out-of-allocation address. The
  // sanitizer must refuse to continue.
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(4, "short_buf");
  buf.host() = {1.0, 2.0, 3.0, 4.0};
  // Valid host backing store, lying device size/address: the simulated
  // access is wild but the harness itself stays well-defined.
  std::vector<double> backing(8, 0.0);
  DeviceSpan<const double> forged(backing.data(), 8, buf.span().addr());

  EXPECT_THROW(
      dev.launch_warps(one_warp("forged_kernel"),
                       [&](Warp& w) {
                         w.load(forged, LaneArray<long long>::filled(6),
                                lane_bit(0));
                       }),
      acsr::vgpu::SanitizerError);
  ASSERT_EQ(Sanitizer::instance().count(SanKind::kOutOfBounds), 1u);
  const SanReport& r = Sanitizer::instance().reports().back();
  EXPECT_EQ(r.kernel, "forged_kernel");
  EXPECT_NE(r.message.find("unallocated device address"), std::string::npos)
      << r.message;
  EXPECT_NE(r.message.find("past the end of 'short_buf'"), std::string::npos)
      << r.message;
}

// --- memcheck: uninitialized reads ------------------------------------------

TEST_F(SanitizerTest, UninitializedReadIsReportedWithProvenance) {
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(32, "fresh");  // never host-filled

  const KernelRun run =
      dev.launch_warps(one_warp("uninit_kernel"), [&](Warp& w) {
        w.load(buf.cspan(), LaneArray<long long>::iota(), lane_bit(3));
      });

  ASSERT_EQ(Sanitizer::instance().count(SanKind::kUninitRead), 1u);
  const SanReport& r = Sanitizer::instance().reports().front();
  EXPECT_EQ(r.kind, SanKind::kUninitRead);
  EXPECT_EQ(r.buffer, "fresh");
  EXPECT_EQ(r.kernel, "uninit_kernel");
  EXPECT_EQ(r.grid, 0);
  EXPECT_EQ(r.block, 0);
  EXPECT_EQ(r.warp, 0);
  EXPECT_EQ(r.lane, 3);
  EXPECT_NE(r.message.find("uninitialized-read"), std::string::npos);
  // The finding surfaces on the run record too.
  EXPECT_EQ(run.sanitizer_reports, 1u);
}

TEST_F(SanitizerTest, HostFillInitializesShadow) {
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(32, "filled");
  for (auto& v : buf.host()) v = 2.0;

  dev.launch_warps(one_warp("read_kernel"), [&](Warp& w) {
    w.load(buf.cspan(), LaneArray<long long>::iota(), kFullMask);
  });
  EXPECT_TRUE(Sanitizer::instance().reports().empty());
}

TEST_F(SanitizerTest, DeviceStoreInitializesShadow) {
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(32, "dev_written");

  dev.launch_warps(one_warp("store_kernel"), [&](Warp& w) {
    w.store(buf.span(), LaneArray<long long>::iota(),
            LaneArray<double>::filled(1.0), kFullMask);
  });
  dev.launch_warps(one_warp("readback_kernel"), [&](Warp& w) {
    w.load(buf.cspan(), LaneArray<long long>::iota(), kFullMask);
  });
  EXPECT_EQ(Sanitizer::instance().count(SanKind::kUninitRead), 0u);
}

TEST_F(SanitizerTest, AtomicReadsUninitializedTarget) {
  // An atomic RMW reads the previous value; accumulating into a y that
  // was never zero-filled is the classic COO-engine defect.
  Device dev(DeviceSpec::gtx_titan());
  auto y = dev.alloc<double>(8, "y_unzeroed");

  dev.launch_warps(one_warp("acc_kernel"), [&](Warp& w) {
    w.atomic_add(y.span(), LaneArray<long long>::filled(0),
                 LaneArray<double>::filled(1.0), lane_bit(0));
  });
  EXPECT_EQ(Sanitizer::instance().count(SanKind::kUninitRead), 1u);
  EXPECT_EQ(Sanitizer::instance().count(SanKind::kWriteRace), 0u);
}

// --- memcheck: frees ---------------------------------------------------------

TEST_F(SanitizerTest, DoubleFreeIsReported) {
  Device dev(DeviceSpec::gtx_titan());
  const std::size_t before = dev.arena().allocated();
  {
    auto buf = dev.alloc<double>(16, "twice_freed");
    // Free it manually while the owning buffer is still alive; the
    // destructor's release is then the second (reported) free.
    dev.arena().release(buf.span().addr(), buf.bytes(), "twice_freed");
  }
  ASSERT_EQ(Sanitizer::instance().count(SanKind::kDoubleFree), 1u);
  const SanReport& r = Sanitizer::instance().reports().back();
  EXPECT_EQ(r.kind, SanKind::kDoubleFree);
  EXPECT_EQ(r.buffer, "twice_freed");
  // The reported double-free must not corrupt the arena's accounting.
  EXPECT_EQ(dev.arena().allocated(), before);
}

TEST_F(SanitizerTest, FreeOfUnallocatedAddressIsReported) {
  Device dev(DeviceSpec::gtx_titan());
  const std::size_t before = dev.arena().allocated();
  dev.arena().release(0xdeadbeef000ULL, 64, "phantom");
  ASSERT_EQ(Sanitizer::instance().count(SanKind::kBadFree), 1u);
  EXPECT_EQ(dev.arena().allocated(), before);
}

TEST_F(SanitizerTest, UseAfterFreeThroughStaleSpan) {
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(16, "stale");
  for (auto& v : buf.host()) v = 1.0;
  DeviceSpan<const double> span = buf.cspan();
  // Device-side free; the host backing store stays alive (owned by `buf`),
  // so the simulated UAF is observable without real UB.
  dev.arena().release(buf.span().addr(), buf.bytes(), "stale");

  dev.launch_warps(one_warp("uaf_kernel"), [&](Warp& w) {
    w.load(span, LaneArray<long long>::filled(0), lane_bit(0));
  });
  ASSERT_GE(Sanitizer::instance().count(SanKind::kUseAfterFree), 1u);
  for (const SanReport& r : Sanitizer::instance().reports()) {
    if (r.kind != SanKind::kUseAfterFree) continue;
    EXPECT_EQ(r.buffer, "stale");
    EXPECT_EQ(r.kernel, "uaf_kernel");
  }
}

// --- memcheck: subspans -------------------------------------------------------

TEST_F(SanitizerTest, SubspanEscapeNamesBuffer) {
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(8, "window");
  try {
    buf.span().subspan(4, 8);
    FAIL() << "subspan escaping the span must throw";
  } catch (const InvariantError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("subspan"), std::string::npos) << msg;
    EXPECT_NE(msg.find("window"), std::string::npos)
        << "diagnostic must name the buffer: " << msg;
  }
}

TEST_F(SanitizerTest, SubspanIntoFreedAllocationIsReported) {
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(8, "gone");
  DeviceSpan<double> span = buf.span();
  dev.arena().release(span.addr(), buf.bytes(), "gone");

  span.subspan(0, 2);  // shadow check fires; in-bounds per the span itself
  ASSERT_GE(Sanitizer::instance().count(SanKind::kUseAfterFree), 1u);
  const SanReport& r = Sanitizer::instance().reports().front();
  EXPECT_EQ(r.buffer, "gone");
  EXPECT_NE(r.message.find("subspan"), std::string::npos);
}

// --- racecheck ---------------------------------------------------------------

TEST_F(SanitizerTest, SameWarpLanesRacingIsReported) {
  Device dev(DeviceSpec::gtx_titan());
  auto y = dev.alloc<double>(4, "y_race");

  dev.launch_warps(one_warp("lane_race"), [&](Warp& w) {
    // Lanes 0 and 1 both plain-store y[0].
    w.store(y.span(), LaneArray<long long>::filled(0),
            LaneArray<double>::filled(1.0),
            lane_bit(0) | lane_bit(1));
  });
  ASSERT_EQ(Sanitizer::instance().count(SanKind::kWriteRace), 1u);
  const SanReport& r = Sanitizer::instance().reports().front();
  EXPECT_EQ(r.buffer, "y_race");
  EXPECT_EQ(r.kernel, "lane_race");
  EXPECT_NE(r.message.find("lane 0"), std::string::npos) << r.message;
}

TEST_F(SanitizerTest, CrossBlockRaceIsReported) {
  Device dev(DeviceSpec::gtx_titan());
  auto y = dev.alloc<double>(4, "y_blocks");

  dev.launch_warps(one_warp("block_race", /*grid=*/2), [&](Warp& w) {
    w.store(y.span(), LaneArray<long long>::filled(0),
            LaneArray<double>::filled(static_cast<double>(w.block_idx())),
            lane_bit(0));
  });
  ASSERT_EQ(Sanitizer::instance().count(SanKind::kWriteRace), 1u);
  const SanReport& r = Sanitizer::instance().reports().front();
  EXPECT_EQ(r.block, 1);  // second writer reports, first is cited
  EXPECT_NE(r.message.find("block 0"), std::string::npos) << r.message;
}

TEST_F(SanitizerTest, AtomicsDoNotRace) {
  Device dev(DeviceSpec::gtx_titan());
  auto y = dev.alloc<double>(4, "y_atomic");
  for (auto& v : y.host()) v = 0.0;

  dev.launch_warps(one_warp("atomic_ok", /*grid=*/4), [&](Warp& w) {
    w.atomic_add(y.span(), LaneArray<long long>::filled(0),
                 LaneArray<double>::filled(1.0), kFullMask);
  });
  EXPECT_EQ(Sanitizer::instance().count(SanKind::kWriteRace), 0u);
  EXPECT_EQ(y.host()[0], 128.0);  // 4 blocks x 32 lanes
}

TEST_F(SanitizerTest, AtomicVsPlainWriteRaces) {
  Device dev(DeviceSpec::gtx_titan());
  auto y = dev.alloc<double>(4, "y_mixed");
  for (auto& v : y.host()) v = 0.0;

  dev.launch_warps(one_warp("mixed_race", /*grid=*/2), [&](Warp& w) {
    if (w.block_idx() == 0)
      w.atomic_add(y.span(), LaneArray<long long>::filled(0),
                   LaneArray<double>::filled(1.0), lane_bit(0));
    else
      w.store(y.span(), LaneArray<long long>::filled(0),
              LaneArray<double>::filled(2.0), lane_bit(0));
  });
  EXPECT_EQ(Sanitizer::instance().count(SanKind::kWriteRace), 1u);
}

TEST_F(SanitizerTest, SequentialLaunchesAreIndependentEpochs) {
  Device dev(DeviceSpec::gtx_titan());
  auto y = dev.alloc<double>(4, "y_seq");

  for (int pass = 0; pass < 2; ++pass) {
    dev.launch_warps(one_warp("seq_kernel"), [&](Warp& w) {
      // A different lane writes y[0] on each pass; across launches this
      // is ordered (stream semantics), not a race.
      w.store(y.span(), LaneArray<long long>::filled(0),
              LaneArray<double>::filled(1.0), lane_bit(pass));
    });
  }
  EXPECT_EQ(Sanitizer::instance().count(SanKind::kWriteRace), 0u);
}

TEST_F(SanitizerTest, ParentChildOrderingIsNotARace) {
  // The ACSR Algorithm 3 pattern: the parent grid zeroes y[row], then
  // device-launches a child that atomically accumulates into it. The DP
  // guarantee (child sees parent's prior writes) makes this ordered.
  Device dev(DeviceSpec::gtx_titan());
  auto y = dev.alloc<double>(4, "y_dp");

  dev.launch(one_warp("dp_parent"), [&](Block& blk) {
    blk.each_warp([&](Warp& w) {
      w.store(y.span(), LaneArray<long long>::filled(0),
              LaneArray<double>::filled(0.0), lane_bit(0));
      w.launch_child(one_warp("dp_child"), [&](Block& child) {
        child.each_warp([&](Warp& cw) {
          cw.atomic_add(y.span(), LaneArray<long long>::filled(0),
                        LaneArray<double>::filled(1.0), kFullMask);
        });
      });
    });
  });
  EXPECT_EQ(Sanitizer::instance().count(SanKind::kWriteRace), 0u);
  EXPECT_EQ(Sanitizer::instance().count(SanKind::kUninitRead), 0u);
  EXPECT_EQ(y.host()[0], 32.0);
}

TEST_F(SanitizerTest, SiblingChildGridsPlainWritesRace) {
  // Two child grids launched by the same parent are concurrent: their
  // plain writes to one address are a real hazard.
  Device dev(DeviceSpec::gtx_titan());
  auto y = dev.alloc<double>(4, "y_siblings");

  dev.launch(one_warp("dp_parent2"), [&](Block& blk) {
    blk.each_warp([&](Warp& w) {
      for (int c = 0; c < 2; ++c) {
        w.launch_child(one_warp("dp_sibling"), [&, c](Block& child) {
          child.each_warp([&, c](Warp& cw) {
            cw.store(y.span(), LaneArray<long long>::filled(0),
                     LaneArray<double>::filled(static_cast<double>(c)),
                     lane_bit(0));
          });
        });
      }
    });
  });
  ASSERT_EQ(Sanitizer::instance().count(SanKind::kWriteRace), 1u);
  const SanReport& r = Sanitizer::instance().reports().front();
  EXPECT_EQ(r.grid, 2);  // second sibling reports against the first
  EXPECT_NE(r.message.find("grid 1"), std::string::npos) << r.message;
}

// --- negative controls --------------------------------------------------------

TEST_F(SanitizerTest, DisabledSanitizerRecordsNothing) {
  Sanitizer::instance().set_enabled(false);
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(32, "dark");  // no shadow materialised

  dev.launch_warps(one_warp("dark_kernel"), [&](Warp& w) {
    w.load(buf.cspan(), LaneArray<long long>::iota(), kFullMask);
    w.store(buf.span(), LaneArray<long long>::filled(0),
            LaneArray<double>::filled(1.0), lane_bit(0) | lane_bit(1));
  });
  EXPECT_TRUE(Sanitizer::instance().reports().empty());
}

TEST_F(SanitizerTest, BufferNameLookupAlwaysWorks) {
  // The registry is maintained even when shadow checking is off.
  Sanitizer::instance().set_enabled(false);
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(16, "named");
  const std::uint64_t addr = buf.span().addr();
  EXPECT_EQ(Sanitizer::instance().buffer_name(addr), "named");
  EXPECT_EQ(Sanitizer::instance().buffer_name(addr + 8 * sizeof(double)),
            "named");
  EXPECT_EQ(Sanitizer::instance().buffer_name(addr + 16 * sizeof(double)),
            "?");
}

TEST_F(SanitizerTest, CleanEnginesProduceNoReports) {
  // The zero-false-positive contract: real engines, fully instrumented,
  // must come out spotless — including ACSR's DP path.
  acsr::graph::PowerLawSpec s;
  s.rows = 300;
  s.cols = 300;
  s.mean_nnz_per_row = 8.0;
  s.alpha = 1.5;
  s.max_row_nnz = 290;
  s.seed = 21;
  const auto a = acsr::graph::powerlaw_matrix(s);

  std::vector<double> x(static_cast<std::size_t>(a.cols));
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.5 + static_cast<double>(i % 7) * 0.125;

  for (const char* name :
       {"csr-scalar", "csr-vector", "coo", "hyb", "merge-csr", "acsr"}) {
    SCOPED_TRACE(name);
    Device dev(DeviceSpec::gtx_titan());
    EngineConfig cfg;
    cfg.hyb_breakeven = 64;
    auto engine = make_engine<double>(name, dev, a, cfg);
    std::vector<double> y;
    engine->simulate(x, y);
    const auto& reports = Sanitizer::instance().reports();
    EXPECT_TRUE(reports.empty())
        << reports.size() << " findings; first: " << reports.front().message;
  }
}

TEST_F(SanitizerTest, HaltModeThrowsOnFirstFinding) {
  Sanitizer::instance().set_halt_on_error(true);
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(8, "strict");

  EXPECT_THROW(
      dev.launch_warps(one_warp("strict_kernel"),
                       [&](Warp& w) {
                         w.load(buf.cspan(), LaneArray<long long>::filled(0),
                                lane_bit(0));
                       }),
      acsr::vgpu::SanitizerError);
  Sanitizer::instance().set_halt_on_error(false);
}

}  // namespace
