// Static kernel verifier (src/analysis, docs/ANALYSIS.md):
//  - every engine's kernels verify clean on every Table II device spec
//    (the clean-verify matrix this suite pins as a regression),
//  - every planted defect in the corpus (mirroring the dynamic sanitizer's
//    defect classes in test_sanitizer.cpp) is flagged *statically* with
//    the right violation kind and kernel/expression attribution,
//  - the ACSR_VERIFY factory gate builds verified engines and stays
//    disabled (one cached-bool branch) by default.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/interpreter.hpp"
#include "analysis/models.hpp"
#include "analysis/verify.hpp"
#include "core/factory.hpp"
#include "graph/powerlaw.hpp"

namespace {

using acsr::analysis::all_defect_cases;
using acsr::analysis::all_engine_names;
using acsr::analysis::run_defect;
using acsr::analysis::verify_engine;
using acsr::analysis::Violation;
using acsr::analysis::ViolationKind;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceSpec;

const std::vector<std::string>& device_keys() {
  static const std::vector<std::string> keys = {"gtx580", "k10", "titan"};
  return keys;
}

std::string render(const std::vector<Violation>& vs) {
  std::string s;
  for (const Violation& v : vs) s += "\n  " + v.str();
  return s;
}

// --- the clean-verify matrix -------------------------------------------------

TEST(StaticVerify, EveryEngineProvesCleanOnEverySpec) {
  for (const std::string& e : all_engine_names()) {
    for (const std::string& d : device_keys()) {
      const auto vs = verify_engine(e, DeviceSpec::by_name(d));
      EXPECT_TRUE(vs.empty())
          << e << " on " << d << " failed verification:" << render(vs);
    }
  }
}

TEST(StaticVerify, CusparseAliasSharesTheCsrModel) {
  EXPECT_TRUE(acsr::analysis::knows_engine("csr-cusparse"));
  const auto vs = verify_engine("csr-cusparse", DeviceSpec::gtx_titan());
  EXPECT_TRUE(vs.empty()) << render(vs);
}

// Regression pin (satellite: no engine silently drops out of the proof
// matrix): the registry covers all 15 factory names and the factory's
// known-name list stays in sync with the verifier's.
TEST(StaticVerify, EngineRegistryIsPinned) {
  const std::vector<std::string> expected = {
      "csr-scalar", "csr-vector", "csr",  "ell",       "coo",
      "hyb",        "brc",        "bccoo", "tcoo",      "sic",
      "merge-csr",  "sell",       "bcsr",  "acsr",      "acsr-binning",
      "ooc-csr"};
  EXPECT_EQ(all_engine_names(), expected);
  EXPECT_FALSE(acsr::analysis::knows_engine("no-such-engine"));
}

// The DP-capability gate: acsr's child-launch leg only runs where the
// device supports dynamic parallelism, so the *same* engine model proves
// clean on Fermi (no DP leg) and on Titan (with it). acsr-binning never
// takes the DP leg anywhere.
TEST(StaticVerify, AcsrDpLegFollowsDeviceCapability) {
  for (const char* name : {"acsr", "acsr-binning"}) {
    for (const std::string& d : device_keys()) {
      const auto vs = verify_engine(name, DeviceSpec::by_name(d));
      EXPECT_TRUE(vs.empty()) << name << " on " << d << render(vs);
    }
  }
}

// --- the defect corpus -------------------------------------------------------

TEST(StaticVerify, EveryPlantedDefectIsFlaggedWithItsKind) {
  for (const auto& d : all_defect_cases()) {
    const auto vs = run_defect(d.name);
    bool hit = false;
    for (const Violation& v : vs) hit = hit || v.kind == d.expected;
    EXPECT_TRUE(hit) << d.name << " expected "
                     << acsr::analysis::violation_kind_name(d.expected)
                     << " but got:" << render(vs);
  }
}

// Regression pin: the corpus keeps covering every statically-checkable
// defect class of the dynamic sanitizer (the free family — double-free,
// use-after-free — is dynamic-only; see docs/ANALYSIS.md).
TEST(StaticVerify, DefectCorpusIsPinned) {
  const auto& cases = all_defect_cases();
  ASSERT_EQ(cases.size(), 13u);
  bool seen[8] = {};
  for (const auto& d : cases) seen[static_cast<int>(d.expected)] = true;
  // All eight violation kinds are exercised by at least one defect.
  for (int k = 0; k < 8; ++k)
    EXPECT_TRUE(seen[k]) << acsr::analysis::violation_kind_name(
        static_cast<ViolationKind>(k));
}

TEST(StaticVerify, ViolationsCarryKernelAndExpressionAttribution) {
  const auto vs = run_defect("oob-load");
  ASSERT_FALSE(vs.empty());
  for (const Violation& v : vs) {
    EXPECT_EQ(v.kernel, "oob_load");
    EXPECT_FALSE(v.expr.empty());
    EXPECT_FALSE(v.detail.empty());
    EXPECT_EQ(v.device, DeviceSpec::gtx_titan().name);
    EXPECT_NE(v.str().find("oob_load"), std::string::npos);
  }
}

TEST(StaticVerify, DpOnFermiIsRejectedButFineOnTitan) {
  const auto vs = run_defect("dp-on-fermi");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, ViolationKind::kDynamicParallelism);
  // The same launch structure on a CC 3.5 device is legal — that is
  // exactly acsr's DP leg, already proven clean above.
}

// --- the ACSR_VERIFY factory gate --------------------------------------------

class VerifyGateTest : public ::testing::Test {
 protected:
  void SetUp() override { acsr::analysis::set_verify_enabled(true); }
  void TearDown() override { acsr::analysis::set_verify_enabled(false); }

  static acsr::mat::Csr<double> small_matrix() {
    acsr::graph::PowerLawSpec s;
    s.rows = 120;
    s.cols = 120;
    s.mean_nnz_per_row = 6.0;
    s.alpha = 1.5;
    s.max_row_nnz = 60;
    s.seed = 7;
    return acsr::graph::powerlaw_matrix(s);
  }
};

TEST_F(VerifyGateTest, FactoryBuildsVerifiedEnginesUnderTheGate) {
  const auto a = small_matrix();
  Device dev(DeviceSpec::gtx_titan());
  for (const std::string& e : all_engine_names()) {
    EXPECT_NO_THROW({
      auto eng = acsr::core::make_engine<double>(e, dev, a);
      ASSERT_NE(eng, nullptr);
    }) << e;
  }
}

TEST_F(VerifyGateTest, UnknownEnginesStillFailInTheFactoryNotTheGate) {
  const auto a = small_matrix();
  Device dev(DeviceSpec::gtx_titan());
  EXPECT_THROW(acsr::core::make_engine<double>("no-such-engine", dev, a),
               acsr::InputError);
}

TEST(VerifyGate, DisabledByDefaultWhenEnvUnset) {
  // The harness runs without ACSR_VERIFY set; the cached gate must then
  // be off (zero-cost path) unless a test flipped it explicitly.
  EXPECT_FALSE(acsr::analysis::verify_enabled());
}

TEST(VerifyGate, OrThrowListsEveryViolation) {
  // Unknown names pass through silently (the factory reports them).
  EXPECT_NO_THROW(acsr::analysis::verify_engine_or_throw(
      "no-such-engine", DeviceSpec::gtx_titan()));
  // Clean engines pass.
  EXPECT_NO_THROW(acsr::analysis::verify_engine_or_throw(
      "acsr", DeviceSpec::gtx_titan()));
}

}  // namespace
