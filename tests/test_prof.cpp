// acsr-prof subsystem tests (docs/OBSERVABILITY.md).
//
// Pins the four contracts the profiling layer makes:
//   1. Off by default, and *recording nothing* when off — the only cost is
//      the cached-bool/null-pointer gate (metering parity itself is pinned
//      by test_metering_invariance.cpp's profiled mode).
//   2. The metric registry fully covers vgpu::Counters (one passthrough
//      metric per field, each reading the right field) and the derived
//      metric formulas hold on hand-built aggregates.
//   3. Lane tallies are executor-path invariant: the affine fast path and
//      the reference loop report bit-identical occupancy inputs.
//   4. The Chrome trace export is schema-valid: required keys on every
//      event, monotonic timestamps and balanced B/E pairs per track,
//      dynamic-parallelism children nested inside their parent's span.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "common/json.hpp"
#include "core/factory.hpp"
#include "graph/powerlaw.hpp"
#include "prof/capture.hpp"
#include "prof/metrics.hpp"
#include "prof/prof.hpp"
#include "prof/report.hpp"
#include "vgpu/device.hpp"

namespace {

using acsr::json::Value;
using acsr::mat::Csr;
using acsr::prof::KernelAgg;
using acsr::prof::LaneCounters;
using acsr::prof::LaunchSample;
using acsr::prof::Profiler;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceSpec;

/// Every test restores the disabled state, whatever path it exits by.
class Prof : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().clear();
    acsr::prof::set_profiler_enabled(false);
  }
  void TearDown() override {
    acsr::prof::set_profiler_enabled(false);
    Profiler::instance().clear();
  }
};

Csr<double> test_matrix(acsr::mat::index_t n = 384, std::uint64_t seed = 11) {
  acsr::graph::PowerLawSpec s;
  s.rows = n;
  s.cols = n;
  s.mean_nnz_per_row = 6.0;
  s.alpha = 1.6;
  // Tail rows land above the 256-nnz bin_max cutoff, so ACSR routes them
  // through the dynamic-parallelism parent (the trace tests rely on this).
  s.max_row_nnz = 320;
  s.tail_rows = 2;
  s.seed = seed;
  return acsr::graph::powerlaw_matrix(s);
}

// --- contract 1: zero recording when off -----------------------------------

TEST_F(Prof, DisabledProfilerRecordsNothing) {
  ASSERT_FALSE(acsr::prof::profiler_enabled());
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> a = test_matrix();
  acsr::core::EngineConfig cfg;
  auto engine = acsr::core::make_engine<double>("acsr", dev, a, cfg);
  std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
  std::vector<double> y;
  engine->simulate(x, y);
  // Apps' phase markers and scoped contexts are no-ops too.
  acsr::prof::phase_marker("app", "noop", 1.0);
  { acsr::prof::ScopedContext ctx("noop"); }
  { acsr::prof::ScopedSpan span("t", "noop"); }

  const Profiler& p = Profiler::instance();
  EXPECT_TRUE(p.launches().empty());
  EXPECT_TRUE(p.spans().empty());
  EXPECT_TRUE(p.instants().empty());
  EXPECT_EQ(p.clock_s(), 0.0);
}

TEST_F(Prof, EnabledProfilerCapturesLaunchesAndAdvancesClock) {
  acsr::prof::set_profiler_enabled(true);
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> a = test_matrix();
  const double sim_s = acsr::prof::capture_engine_spmv<double>(
      "csr-scalar", dev, a);
  const Profiler& p = Profiler::instance();
  ASSERT_FALSE(p.launches().empty());
  double launch_sum = 0.0;
  for (const LaunchSample& s : p.launches()) {
    EXPECT_EQ(s.context, "csr-scalar");
    EXPECT_FALSE(s.kernel.empty());
    EXPECT_GT(s.run.duration_s, 0.0);
    launch_sum += s.run.duration_s;
    // Lane tallies were fed: a gather-heavy kernel issues memory slots.
    EXPECT_GT(s.lanes.mem_lane_slots, 0u);
    EXPECT_LE(s.lanes.mem_active_lanes, s.lanes.mem_lane_slots);
    // Per-SM issue seconds never exceed the launch duration.
    for (double sm_s : s.sm_issue_s) {
      EXPECT_GE(sm_s, 0.0);
      EXPECT_LE(sm_s, s.run.duration_s * (1.0 + 1e-12));
    }
  }
  EXPECT_EQ(p.clock_s(), launch_sum);
  EXPECT_GT(sim_s, 0.0);
}

// --- contract 2: registry completeness and formulas ------------------------

TEST_F(Prof, EveryCountersFieldHasAPassthroughMetric) {
  // The field list mirrors src/vgpu/counters.hpp; scripts/lint.sh rule 4
  // greps the same correspondence so the two cannot drift apart silently.
  const char* const kFields[] = {
      "blocks",        "warps",          "issue_cycles",
      "sp_flops",      "dp_flops",       "gmem_requests",
      "gmem_transactions", "gmem_bytes", "tex_requests",
      "tex_transactions",  "tex_bytes",  "shuffle_ops",
      "smem_accesses", "atomic_ops",     "atomic_conflicts",
      "child_launches", "child_blocks",
  };
  const auto& cm = acsr::prof::counter_metrics();
  ASSERT_EQ(cm.size(), std::size(kFields));
  std::set<std::string> have;
  for (const auto& c : cm) {
    have.insert(c.field);
    const acsr::prof::MetricDef* m = acsr::prof::find_metric(c.metric);
    ASSERT_NE(m, nullptr) << c.metric;
    EXPECT_TRUE(m->deterministic) << c.metric;
    EXPECT_EQ(std::string(c.metric), "counters." + std::string(c.field));
  }
  for (const char* f : kFields)
    EXPECT_TRUE(have.count(f)) << "no passthrough metric for field " << f;

  // Registry names are unique.
  std::set<std::string> names;
  for (const auto& m : acsr::prof::metric_registry())
    EXPECT_TRUE(names.insert(m.name).second) << "duplicate " << m.name;
}

TEST_F(Prof, PassthroughMetricsReadTheRightField) {
  // Give each field a distinct value and check each passthrough returns
  // exactly its own field's value.
  KernelAgg agg;
  auto& c = agg.counters;
  std::uint64_t v = 1000;
  std::map<std::string, std::uint64_t> want;
  for (std::uint64_t* f : {&c.blocks, &c.warps, &c.issue_cycles, &c.sp_flops,
                           &c.dp_flops, &c.gmem_requests,
                           &c.gmem_transactions, &c.gmem_bytes,
                           &c.tex_requests, &c.tex_transactions, &c.tex_bytes,
                           &c.shuffle_ops, &c.smem_accesses, &c.atomic_ops,
                           &c.atomic_conflicts, &c.child_launches,
                           &c.child_blocks})
    *f = ++v;
  want["counters.blocks"] = c.blocks;
  want["counters.warps"] = c.warps;
  want["counters.issue_cycles"] = c.issue_cycles;
  want["counters.sp_flops"] = c.sp_flops;
  want["counters.dp_flops"] = c.dp_flops;
  want["counters.gmem_requests"] = c.gmem_requests;
  want["counters.gmem_transactions"] = c.gmem_transactions;
  want["counters.gmem_bytes"] = c.gmem_bytes;
  want["counters.tex_requests"] = c.tex_requests;
  want["counters.tex_transactions"] = c.tex_transactions;
  want["counters.tex_bytes"] = c.tex_bytes;
  want["counters.shuffle_ops"] = c.shuffle_ops;
  want["counters.smem_accesses"] = c.smem_accesses;
  want["counters.atomic_ops"] = c.atomic_ops;
  want["counters.atomic_conflicts"] = c.atomic_conflicts;
  want["counters.child_launches"] = c.child_launches;
  want["counters.child_blocks"] = c.child_blocks;
  for (const auto& [name, expect] : want) {
    const acsr::prof::MetricDef* m = acsr::prof::find_metric(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->compute(agg), static_cast<double>(expect)) << name;
  }
}

TEST_F(Prof, DerivedMetricFormulas) {
  LaneCounters l;
  l.mem_lane_slots = 64;   // two fully-populated requests...
  l.mem_active_lanes = 48; // ...at 75% occupancy
  l.flop_lane_slots = 32;
  l.flop_active_lanes = 32;
  acsr::vgpu::Counters c;
  c.gmem_bytes = 128;
  l.useful_gmem_bytes = 96;
  EXPECT_DOUBLE_EQ(acsr::prof::lane_occupancy_pct(l), 100.0 * 80 / 96);
  EXPECT_DOUBLE_EQ(acsr::prof::divergence_ratio(l),
                   1.0 - (100.0 * 80 / 96) / 100.0);
  EXPECT_DOUBLE_EQ(acsr::prof::coalescing_efficiency(l, c), 96.0 / 128.0);
  // Edge cases: no slots -> fully occupied; no traffic -> fully coalesced.
  EXPECT_DOUBLE_EQ(acsr::prof::lane_occupancy_pct(LaneCounters{}), 100.0);
  EXPECT_DOUBLE_EQ(
      acsr::prof::coalescing_efficiency(LaneCounters{}, acsr::vgpu::Counters{}),
      1.0);
  EXPECT_DOUBLE_EQ(
      acsr::prof::tex_coalescing_efficiency(LaneCounters{},
                                            acsr::vgpu::Counters{}),
      1.0);
}

// --- contract 3: lane tallies are executor-path invariant -------------------

TEST_F(Prof, LaneTalliesMatchAcrossFastAndReferencePaths) {
  const Csr<double> a = test_matrix(128, 23);
  LaneCounters agg[2];
  for (int mode = 0; mode < 2; ++mode) {
    acsr::vgpu::set_reference_metering(mode == 1);
    Profiler::instance().clear();
    acsr::prof::set_profiler_enabled(true);
    Device dev(DeviceSpec::gtx_titan());
    acsr::prof::capture_engine_spmv<double>("acsr", dev, a);
    for (const LaunchSample& s : Profiler::instance().launches())
      agg[mode] += s.lanes;
    acsr::prof::set_profiler_enabled(false);
  }
  acsr::vgpu::set_reference_metering(false);
  EXPECT_EQ(agg[0].mem_lane_slots, agg[1].mem_lane_slots);
  EXPECT_EQ(agg[0].mem_active_lanes, agg[1].mem_active_lanes);
  EXPECT_EQ(agg[0].flop_lane_slots, agg[1].flop_lane_slots);
  EXPECT_EQ(agg[0].flop_active_lanes, agg[1].flop_active_lanes);
  EXPECT_EQ(agg[0].useful_gmem_bytes, agg[1].useful_gmem_bytes);
  EXPECT_EQ(agg[0].useful_tex_bytes, agg[1].useful_tex_bytes);
  EXPECT_GT(agg[0].mem_lane_slots, 0u);
}

// --- contract 4: Chrome trace schema ---------------------------------------

/// Run an ACSR SpMV (with DP children) plus an app phase and an instant,
/// and return the chrome trace document.
Value capture_trace() {
  acsr::prof::set_profiler_enabled(true);
  Profiler& p = Profiler::instance();
  p.clear();
  const Csr<double> a = test_matrix();
  Device dev(DeviceSpec::gtx_titan());
  acsr::prof::capture_engine_spmv<double>("acsr", dev, a);
  p.instant("fault:example instant");
  p.phase("app", "pagerank:iteration", 1e-4);
  acsr::prof::set_profiler_enabled(false);
  return p.chrome_trace();
}

TEST_F(Prof, ChromeTraceIsSchemaValid) {
  const Value doc = capture_trace();
  ASSERT_TRUE(doc.is_object());
  const Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->as_array().empty());
  EXPECT_NE(doc.find("displayTimeUnit"), nullptr);

  // Per-(pid, tid) track state for monotonicity and B/E balance.
  std::map<std::pair<int, int>, double> last_ts;
  std::map<std::pair<int, int>, int> depth;
  std::set<std::string> names;
  bool saw_meta = false, saw_instant = false;
  for (const Value& ev : events->as_array()) {
    ASSERT_TRUE(ev.is_object());
    const Value* name = ev.find("name");
    const Value* ph = ev.find("ph");
    const Value* pid = ev.find("pid");
    const Value* tid = ev.find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_TRUE(ph->is_string());
    ASSERT_TRUE(pid->is_number());
    ASSERT_TRUE(tid->is_number());
    const std::string& phase = ph->as_string();
    const auto key = std::make_pair(static_cast<int>(pid->as_number()),
                                    static_cast<int>(tid->as_number()));
    if (phase == "M") {
      saw_meta = true;
      continue;  // metadata events carry no ts
    }
    const Value* ts = ev.find("ts");
    ASSERT_NE(ts, nullptr) << phase;
    ASSERT_TRUE(ts->is_number());
    EXPECT_GE(ts->as_number(), 0.0);
    auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(ts->as_number(), it->second)
          << "timestamps regress on track pid=" << key.first
          << " tid=" << key.second;
    }
    last_ts[key] = std::max(ts->as_number(),
                            it == last_ts.end() ? 0.0 : it->second);
    if (phase == "B") {
      ++depth[key];
      names.insert(name->as_string());
    } else if (phase == "E") {
      --depth[key];
      EXPECT_GE(depth[key], 0) << "E without matching B on pid="
                               << key.first << " tid=" << key.second;
    } else if (phase == "i") {
      saw_instant = true;
      const Value* s = ev.find("s");
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(s->as_string(), "g");
    } else {
      FAIL() << "unexpected phase '" << phase << "'";
    }
  }
  for (const auto& [key, d] : depth)
    EXPECT_EQ(d, 0) << "unbalanced B/E on pid=" << key.first
                    << " tid=" << key.second;
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_instant);
  // Kernel spans, DP children, and the app phase all made it in.
  EXPECT_TRUE(names.count("acsr_dp_parent"));
  EXPECT_TRUE(names.count("pagerank:iteration"));
  bool has_child = false;
  for (const std::string& n : names)
    has_child = has_child || n.rfind("acsr_row", 0) == 0;
  EXPECT_TRUE(has_child) << "no DP child spans in trace";
}

TEST_F(Prof, ChildSpansNestInsideParentWindow) {
  const Value doc = capture_trace();
  const Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Locate the dp parent's B/E window on its stream track, then check
  // every acsr_row child B/E lies within it.
  double parent_b = -1.0, parent_e = -1.0;
  for (const Value& ev : events->as_array()) {
    const Value* name = ev.find("name");
    const Value* ph = ev.find("ph");
    const Value* tid = ev.find("tid");
    if (name == nullptr || ph == nullptr) continue;
    if (name->as_string() != "acsr_dp_parent") continue;
    if (tid != nullptr && tid->as_number() != 0.0) continue;  // stream track
    if (ph->as_string() == "B") parent_b = ev.find("ts")->as_number();
    if (ph->as_string() == "E") parent_e = ev.find("ts")->as_number();
  }
  ASSERT_GE(parent_b, 0.0);
  ASSERT_GT(parent_e, parent_b);
  int children = 0;
  for (const Value& ev : events->as_array()) {
    const Value* name = ev.find("name");
    const Value* ph = ev.find("ph");
    if (name == nullptr || ph == nullptr) continue;
    if (name->as_string().rfind("acsr_row", 0) != 0) continue;
    if (ph->as_string() != "B" && ph->as_string() != "E") continue;
    const double ts = ev.find("ts")->as_number();
    EXPECT_GE(ts, parent_b - 1e-9);
    EXPECT_LE(ts, parent_e + 1e-9);
    ++children;
  }
  EXPECT_GT(children, 0);
}

TEST_F(Prof, WriteTraceRoundTripsThroughParser) {
  acsr::prof::set_profiler_enabled(true);
  Profiler& p = Profiler::instance();
  const Csr<double> a = test_matrix();
  Device dev(DeviceSpec::gtx_titan());
  acsr::prof::capture_engine_spmv<double>("csr-vector", dev, a);
  acsr::prof::set_profiler_enabled(false);

  const std::string path =
      ::testing::TempDir() + "acsr_prof_trace_test.json";
  ASSERT_TRUE(p.write_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  Value parsed;
  std::string err;
  ASSERT_TRUE(acsr::json::parse(ss.str(), &parsed, &err)) << err;
  EXPECT_NE(parsed.find("traceEvents"), nullptr);
  std::remove(path.c_str());
}

// --- exporters --------------------------------------------------------------

TEST_F(Prof, MetricsDocAndSummaryCoverRecordedEngines) {
  acsr::prof::set_profiler_enabled(true);
  Profiler& p = Profiler::instance();
  const Csr<double> a = test_matrix();
  for (const char* e : {"csr-scalar", "acsr"}) {
    Device dev(DeviceSpec::gtx_titan());
    acsr::prof::capture_engine_spmv<double>(e, dev, a);
  }
  acsr::prof::set_profiler_enabled(false);

  const Value doc = acsr::prof::metrics_doc(p.launches(),
                                            p.retry_backoff_s());
  const Value* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), acsr::prof::kMetricsSchema);
  const Value* engines = doc.find("engines");
  ASSERT_NE(engines, nullptr);
  ASSERT_TRUE(engines->is_object());
  ASSERT_TRUE(engines->find("csr-scalar") != nullptr);
  ASSERT_TRUE(engines->find("acsr") != nullptr);
  for (const auto& [ctx, section] : engines->as_object()) {
    const Value* total = section.find("total");
    ASSERT_NE(total, nullptr) << ctx;
    // Every registered metric appears with a numeric value.
    for (const auto& m : acsr::prof::metric_registry()) {
      const Value* v = total->find(m.name);
      ASSERT_NE(v, nullptr) << ctx << "/" << m.name;
      EXPECT_TRUE(v->is_number() || v->is_null()) << ctx << "/" << m.name;
    }
  }

  std::ostringstream os;
  acsr::prof::render_summary(os, p.launches(), p.retry_backoff_s());
  const std::string text = os.str();
  EXPECT_NE(text.find("csr_scalar"), std::string::npos);
  EXPECT_NE(text.find("acsr_dp_parent"), std::string::npos);
  EXPECT_NE(text.find("csr-scalar"), std::string::npos);

  std::ostringstream mos;
  acsr::prof::render_engine_matrix(mos, doc);
  EXPECT_NE(mos.str().find("lane_occupancy_pct"), std::string::npos);
}

TEST_F(Prof, DiffMetricsFlagsDriftAndStructuralChanges) {
  acsr::prof::set_profiler_enabled(true);
  Profiler& p = Profiler::instance();
  const Csr<double> a = test_matrix();
  {
    Device dev(DeviceSpec::gtx_titan());
    acsr::prof::capture_engine_spmv<double>("csr-scalar", dev, a);
  }
  acsr::prof::set_profiler_enabled(false);
  const Value doc = acsr::prof::metrics_doc(p.launches(),
                                            p.retry_backoff_s());

  // Identical documents: no drift at any threshold.
  EXPECT_TRUE(acsr::prof::diff_metrics(doc, doc, 0.0).empty());

  // Perturb one deterministic metric by 25%: flagged above 10%, not above
  // 30%.
  Value perturbed = doc;
  Value& total = perturbed.as_object()
                     .at("engines")
                     .as_object()
                     .at("csr-scalar")
                     .as_object()
                     .at("total");
  const double old_ms = total.find("model_ms")->as_number();
  total.as_object()["model_ms"] = old_ms * 1.25;
  auto drifts = acsr::prof::diff_metrics(perturbed, doc, 0.10);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].path, "engines/csr-scalar/total/model_ms");
  EXPECT_NEAR(drifts[0].rel, 0.25, 1e-9);
  EXPECT_TRUE(acsr::prof::diff_metrics(perturbed, doc, 0.30).empty());

  // An engine present on only one side is structural drift at any
  // threshold.
  Value empty_doc;
  std::string err;
  ASSERT_TRUE(acsr::json::parse(
      R"({"schema":"acsr-prof/v1","engines":{}})", &empty_doc, &err))
      << err;
  auto structural = acsr::prof::diff_metrics(empty_doc, doc, 100.0);
  ASSERT_EQ(structural.size(), 1u);
  EXPECT_EQ(structural[0].path, "engines/csr-scalar");
  EXPECT_TRUE(std::isnan(structural[0].current));
}

// --- app phase markers ------------------------------------------------------

TEST_F(Prof, AppPhaseMarkersChargeTheProfilerClock) {
  acsr::prof::set_profiler_enabled(true);
  Profiler& p = Profiler::instance();
  const Csr<double> adj = test_matrix();
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> m = acsr::apps::pagerank_matrix(adj);
  auto engine = acsr::core::make_engine<double>("csr-vector", dev, m);
  acsr::apps::PageRankConfig cfg;
  cfg.iter.max_iters = 5;
  const auto res = acsr::apps::pagerank<double>(*engine, cfg);
  acsr::prof::set_profiler_enabled(false);

  int iter_spans = 0;
  double span_s = 0.0;
  for (const auto& s : p.spans())
    if (s.name == "pagerank:iteration") {
      ++iter_spans;
      span_s += s.end_s - s.start_s;
    }
  EXPECT_EQ(iter_spans, res.iterations);
  // The phase spans account for exactly the app's charged iteration time.
  EXPECT_NEAR(span_s, res.total_s, 1e-12);
}

}  // namespace
