// The ACSR parameter auto-tuner: finds a configuration no worse than the
// defaults, prunes the search on non-DP devices, and stays cheap enough
// for dynamic graphs (its whole cost is tens of SpMVs, not thousands).
#include <gtest/gtest.h>

#include "core/autotune.hpp"
#include "graph/corpus.hpp"

namespace {

using namespace acsr;

mat::Csr<double> tail_heavy() {
  return graph::build_matrix(graph::corpus_entry("RAL"), 64, 42);
}

TEST(AcsrAutotune, FindsConfigurationAtLeastAsGoodAsDefault) {
  const auto spec = vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(64);
  const auto a = tail_heavy();
  vgpu::Device dev(spec);
  const auto tuned = core::autotune_acsr(dev, a);
  EXPECT_GT(tuned.trials, 3);
  EXPECT_GT(tuned.best_spmv_s, 0.0);

  vgpu::Device d_def(spec), d_best(spec);
  core::AcsrEngine<double> def(d_def, a);
  core::AcsrEngine<double> best(d_best, a, tuned.best);
  EXPECT_LE(best.spmv_seconds(), def.spmv_seconds() * 1.02);
}

TEST(AcsrAutotune, PrunesSearchWithoutDynamicParallelism) {
  const auto spec = vgpu::DeviceSpec::gtx580().scaled_for_corpus(64);
  const auto a = tail_heavy();
  vgpu::Device dev(spec);
  const auto tuned = core::autotune_acsr(dev, a);
  EXPECT_EQ(tuned.trials, 1);  // ThreadLoad/BinMax only matter with DP
}

TEST(AcsrAutotune, CostStaysInSpMvRange) {
  // The contrast with BCCOO/TCOO tuning: this search costs tens of SpMVs.
  const auto spec = vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(64);
  const auto a = graph::build_matrix(graph::corpus_entry("EU2"), 64, 42);
  vgpu::Device dev(spec);
  const auto tuned = core::autotune_acsr(dev, a);
  EXPECT_LT(tuned.tuning_cost_s, 100.0 * tuned.best_spmv_s);
}

TEST(AcsrAutotune, TunedEngineStaysCorrect) {
  const auto spec = vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(64);
  const auto a = tail_heavy();
  vgpu::Device dev(spec);
  const auto tuned = core::autotune_acsr(dev, a);
  vgpu::Device d2(spec);
  core::AcsrEngine<double> e(d2, a, tuned.best);
  std::vector<double> x(static_cast<std::size_t>(a.cols), 0.5), y, ref;
  e.simulate(x, y);
  a.spmv(x, ref);
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(y[i], ref[i], 1e-9 * std::max(1.0, std::abs(ref[i])));
}

}  // namespace
