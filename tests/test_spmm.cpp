// Batched SpMM + serving plane tests (tier 1).
//
// The contracts pinned here are the tentpole's acceptance criteria:
//   * apply_batch is bit-identical to k scalar applies on every engine
//     (the correct-by-construction loop is the spec, the real kernels an
//     optimization of metering only);
//   * simulate_batch matches the host reference on every engine,
//     including the real column-blocked kernels;
//   * the real SpMM kernels amortize matrix sector traffic: gmem bytes
//     per vector strictly fall as the batch widens, and a width-32 batch
//     moves far less than 32 scalar sweeps;
//   * width-0 blocks are a no-op, width-1 routes through the scalar SpMV
//     path (memo keys stay compatible);
//   * the batch scheduler coalesces priority-first, sheds on overload
//     with a typed error, and bills tenants on the simulated clock.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "apps/rwr.hpp"
#include "apps/rwr_batch.hpp"
#include "core/factory.hpp"
#include "core/memo_engine.hpp"
#include "core/resilient.hpp"
#include "graph/powerlaw.hpp"
#include "mat/dense_block.hpp"
#include "serve/scheduler.hpp"
#include "vgpu/memo.hpp"

namespace {

using acsr::core::EngineConfig;
using acsr::core::make_engine;
using acsr::mat::Csr;
using acsr::mat::DenseBlock;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceSpec;
using acsr::vgpu::memo::MemoCache;

Csr<double> powerlaw(acsr::mat::index_t rows, double mean, unsigned seed) {
  acsr::graph::PowerLawSpec s;
  s.rows = rows;
  s.cols = rows;
  s.mean_nnz_per_row = mean;
  s.alpha = 1.7;
  s.max_row_nnz = rows / 2;
  s.seed = seed;
  return acsr::graph::powerlaw_matrix(s);
}

DenseBlock<double> random_block(acsr::mat::index_t rows, int k,
                                unsigned seed) {
  DenseBlock<double> b(rows, k);
  unsigned state = seed;
  for (int c = 0; c < k; ++c)
    for (acsr::mat::index_t r = 0; r < rows; ++r) {
      state = state * 1664525u + 1013904223u;
      b.at(r, c) = 0.25 + (state % 64) * 0.03125;
    }
  return b;
}

struct MemoGuard {
  MemoGuard() {
    MemoCache::instance().clear();
    MemoCache::instance().reset_stats();
    acsr::vgpu::memo::set_memo_enabled(true);
  }
  ~MemoGuard() {
    acsr::vgpu::memo::set_memo_enabled(false);
    MemoCache::instance().clear();
    MemoCache::instance().reset_stats();
  }
};

const char* kAllEngines[] = {"csr-scalar", "csr-vector", "csr",
                             "csr-cusparse", "ell", "coo", "hyb", "brc",
                             "bccoo", "tcoo", "sic", "merge-csr", "sell",
                             "bcsr", "acsr", "acsr-binning"};

// --- DenseBlock --------------------------------------------------------------

TEST(DenseBlock, PaddedColumnMajorLayout) {
  DenseBlock<double> b(50, 3);
  EXPECT_EQ(b.rows, 50);
  EXPECT_EQ(b.width, 3);
  EXPECT_EQ(b.ld, 64);  // 50 rounded up to 32-multiple
  EXPECT_EQ(b.data.size(), 64u * 3u);
  b.at(49, 2) = 7.0;
  EXPECT_EQ(b.data[2 * 64 + 49], 7.0);

  std::vector<double> col(50, 1.5);
  b.set_column(1, col);
  EXPECT_EQ(b.column(1), col);
  // Padding rows stay zero after set_column.
  for (acsr::mat::index_t r = 50; r < 64; ++r) EXPECT_EQ(b.at(r, 1), 0.0);
}

TEST(DenseBlock, ZeroColumnsIsEmpty) {
  DenseBlock<double> b(100, 0);
  EXPECT_EQ(b.width, 0);
  EXPECT_TRUE(b.data.empty());
}

// --- batched exactness across every engine -----------------------------------

class SpmmExactness : public ::testing::TestWithParam<const char*> {};

TEST_P(SpmmExactness, BatchedMatchesScalar) {
  const std::string name = GetParam();
  const Csr<double> a = powerlaw(500, 7.0, 17);
  Device dev(DeviceSpec::gtx_titan());
  EngineConfig cfg;
  cfg.hyb_breakeven = 64;
  std::unique_ptr<acsr::spmv::SpmvEngine<double>> engine;
  try {
    engine = make_engine<double>(name, dev, a, cfg);
  } catch (const acsr::InputError& e) {
    ASSERT_EQ(name, "ell");  // documented refusal of pathological shapes
    GTEST_SKIP() << e.what();
  }

  const int k = 5;
  const DenseBlock<double> x = random_block(a.cols, k, 99);

  // Host path: bit-for-bit the k scalar applies.
  DenseBlock<double> y_batch;
  engine->apply_batch(x, y_batch);
  ASSERT_EQ(y_batch.rows, a.rows);
  ASSERT_EQ(y_batch.width, k);
  for (int c = 0; c < k; ++c) {
    std::vector<double> y_scalar;
    engine->apply(x.column(c), y_scalar);
    EXPECT_EQ(y_batch.column(c), y_scalar) << "column " << c;
  }

  // Device path: every engine (looped default or real SpMM kernels) must
  // match the host reference.
  DenseBlock<double> y_sim;
  const double t = engine->simulate_batch(x, y_sim);
  EXPECT_GT(t, 0.0);
  ASSERT_EQ(y_sim.rows, a.rows);
  ASSERT_EQ(y_sim.width, k);
  for (int c = 0; c < k; ++c) {
    std::vector<double> y_ref;
    a.spmv(x.column(c), y_ref);
    const std::vector<double> y_col = y_sim.column(c);
    for (std::size_t r = 0; r < y_ref.size(); ++r) {
      const double scale = std::max(1.0, std::abs(y_ref[r]));
      EXPECT_NEAR(y_col[r], y_ref[r], 1e-9 * scale)
          << "column " << c << " row " << r;
    }
  }
}

TEST_P(SpmmExactness, ZeroWidthIsNoOp) {
  const std::string name = GetParam();
  const Csr<double> a = powerlaw(200, 5.0, 3);
  Device dev(DeviceSpec::gtx_titan());
  EngineConfig cfg;
  cfg.hyb_breakeven = 64;
  std::unique_ptr<acsr::spmv::SpmvEngine<double>> engine;
  try {
    engine = make_engine<double>(name, dev, a, cfg);
  } catch (const acsr::InputError& e) {
    ASSERT_EQ(name, "ell");
    GTEST_SKIP() << e.what();
  }

  const DenseBlock<double> x(a.cols, 0);
  DenseBlock<double> y;
  EXPECT_EQ(engine->simulate_batch(x, y), 0.0);  // no launch, no time
  EXPECT_EQ(y.rows, a.rows);
  EXPECT_EQ(y.width, 0);
  engine->apply_batch(x, y);
  EXPECT_EQ(y.width, 0);
}

std::string pretty_engine_name(
    const ::testing::TestParamInfo<const char*>& pinfo) {
  std::string n = pinfo.param;
  for (auto& ch : n)
    if (ch == '-') ch = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllEngines, SpmmExactness,
                         ::testing::ValuesIn(kAllEngines),
                         pretty_engine_name);

// --- sector-byte amortization (the tentpole's point) -------------------------

class SpmmAmortization : public ::testing::TestWithParam<const char*> {};

TEST_P(SpmmAmortization, MatrixBytesPerVectorFallWithWidth) {
  const std::string name = GetParam();
  // WIK-class shape: power-law graph, heavy tail, ~8 nnz/row.
  const Csr<double> a = powerlaw(1500, 8.0, 29);
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>(name, dev, a, EngineConfig{});

  auto gmem_per_vector = [&](int k) {
    const DenseBlock<double> x = random_block(a.cols, k, 7u + unsigned(k));
    DenseBlock<double> y;
    engine->simulate_batch(x, y);
    return static_cast<double>(
               engine->report().last_run.counters.gmem_bytes) /
           k;
  };

  const double per1 = gmem_per_vector(1);
  const double per8 = gmem_per_vector(8);
  const double per32 = gmem_per_vector(32);
  // Strictly decreasing per-vector matrix traffic...
  EXPECT_LT(per8, per1);
  EXPECT_LT(per32, per8);
  // ...and a width-32 batch moves much less than 32 scalar sweeps
  // (bytes(SpMM_32) << 32 * bytes(SpMV)).
  EXPECT_LT(per32 * 32, 0.5 * 32 * per1);
}

INSTANTIATE_TEST_SUITE_P(RealSpmmEngines, SpmmAmortization,
                         ::testing::Values("csr-scalar", "csr-vector",
                                           "acsr", "acsr-binning"),
                         pretty_engine_name);

// --- width-1 fast path and memo key compatibility ----------------------------

TEST(SpmmFastPath, WidthOneRoutesThroughScalarSpmv) {
  const Csr<double> a = powerlaw(400, 7.0, 5);
  Device dev(DeviceSpec::gtx_titan());
  acsr::core::AcsrEngine<double> engine(dev, a);

  DenseBlock<double> y;
  engine.simulate_batch(random_block(a.cols, 1, 1), y);
  EXPECT_EQ(engine.report().last_run.name, "acsr");  // the scalar launch seq

  engine.simulate_batch(random_block(a.cols, 4, 2), y);
  EXPECT_EQ(engine.report().last_run.name, "acsr_spmm");
}

TEST(SpmmMemo, WidthKeyedEntriesAndSpmvKeySharing) {
  MemoGuard guard;
  const Csr<double> a = powerlaw(300, 6.0, 23);
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>("acsr", dev, a);

  std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0), y;
  engine->simulate(x, y);  // capture "spmv"
  EXPECT_EQ(MemoCache::instance().stats().misses, 1u);

  // Width-1 batch shares the scalar key: hit, not a second capture.
  DenseBlock<double> yb;
  engine->simulate_batch(random_block(a.cols, 1, 11), yb);
  EXPECT_EQ(MemoCache::instance().stats().misses, 1u);
  EXPECT_EQ(MemoCache::instance().stats().hits, 1u);

  // A new width captures its own entry; the same width replays it.
  const DenseBlock<double> x8 = random_block(a.cols, 8, 12);
  const double t8 = engine->simulate_batch(x8, yb);
  EXPECT_EQ(MemoCache::instance().stats().misses, 2u);
  const double t8_replay = engine->simulate_batch(x8, yb);
  EXPECT_EQ(MemoCache::instance().stats().hits, 2u);
  EXPECT_EQ(t8_replay, t8);

  // Width 0 never touches the cache (nothing launches).
  const auto before = MemoCache::instance().stats();
  engine->simulate_batch(DenseBlock<double>(a.cols, 0), yb);
  const auto& after = MemoCache::instance().stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

// --- resilient plane ----------------------------------------------------------

TEST(SpmmResilient, BatchedPathServesThroughTheLadder) {
  const Csr<double> a = powerlaw(250, 6.0, 41);
  Device dev(DeviceSpec::gtx_titan());
  acsr::core::ResilientEngine<double> engine({&dev}, a, "acsr");

  const DenseBlock<double> x = random_block(a.cols, 6, 8);
  DenseBlock<double> y;
  EXPECT_GT(engine.simulate_batch(x, y), 0.0);
  for (int c = 0; c < x.width; ++c) {
    std::vector<double> y_ref;
    a.spmv(x.column(c), y_ref);
    const std::vector<double> y_col = y.column(c);
    for (std::size_t r = 0; r < y_ref.size(); ++r)
      EXPECT_NEAR(y_col[r], y_ref[r],
                  1e-9 * std::max(1.0, std::abs(y_ref[r])));
  }
}

// --- batch scheduler ----------------------------------------------------------

TEST(Scheduler, CoalescesUpToMaxWidthAndServesCorrectResults) {
  const Csr<double> a = powerlaw(200, 6.0, 13);
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>("csr-vector", dev, a);

  acsr::serve::ServeOptions opt;
  opt.max_batch_width = 4;
  acsr::serve::BatchScheduler<double> sched(*engine, opt);

  std::vector<std::uint64_t> ids;
  std::vector<std::vector<double>> xs;
  for (int i = 0; i < 10; ++i) {
    std::vector<double> x(static_cast<std::size_t>(a.cols));
    for (std::size_t j = 0; j < x.size(); ++j)
      x[j] = 0.5 + ((i * 31 + static_cast<int>(j)) % 13) * 0.25;
    ids.push_back(sched.submit(x, "t" + std::to_string(i % 2)));
    xs.push_back(std::move(x));
  }
  EXPECT_EQ(sched.pending(), 10u);
  EXPECT_EQ(sched.drain(), 3);  // 4 + 4 + 2
  EXPECT_EQ(sched.batches(), 3u);
  EXPECT_EQ(sched.served_requests(), 10u);
  EXPECT_NEAR(sched.batch_width_avg(), 10.0 / 3.0, 1e-12);
  EXPECT_GT(sched.clock_s(), 0.0);

  // Served results are the batched device path, whose per-column
  // accumulation order is pinned to the scalar device kernel — so each
  // result is bit-identical to a scalar simulate of the same vector.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::vector<double> y_ref;
    engine->simulate(xs[i], y_ref);
    EXPECT_EQ(sched.take_result(ids[i]), y_ref) << "request " << i;
  }
}

TEST(Scheduler, ShedsOnOverloadWithTypedRejection) {
  const Csr<double> a = powerlaw(100, 4.0, 7);
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>("csr-scalar", dev, a);

  acsr::serve::ServeOptions opt;
  opt.queue_capacity = 3;
  acsr::serve::BatchScheduler<double> sched(*engine, opt);

  const std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
  for (int i = 0; i < 3; ++i) sched.submit(x, "bulk");
  EXPECT_THROW(sched.submit(x, "bulk"), acsr::serve::OverloadError);
  // The shed is also an InputError (client-visible), never an invariant.
  EXPECT_THROW(sched.submit(x, "bulk"), acsr::InputError);
  // Draining frees capacity again.
  sched.drain();
  EXPECT_NO_THROW(sched.submit(x, "bulk"));
  // Dimension mismatch is rejected up front.
  EXPECT_THROW(sched.submit(std::vector<double>(3, 1.0), "bulk"),
               acsr::InputError);
}

TEST(Scheduler, PriorityFirstThenDeadlineThenFifo) {
  const Csr<double> a = powerlaw(100, 4.0, 19);
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>("csr-scalar", dev, a);

  acsr::serve::ServeOptions opt;
  opt.max_batch_width = 2;
  acsr::serve::BatchScheduler<double> sched(*engine, opt);

  const std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
  sched.submit(x, "low", /*priority=*/0);
  sched.submit(x, "low", /*priority=*/0);
  sched.submit(x, "tight", /*priority=*/1, /*deadline_s=*/1.0);
  sched.submit(x, "loose", /*priority=*/1, /*deadline_s=*/2.0);

  // First batch: both priority-1 requests, tight deadline first; the
  // priority-0 pair waits for the second batch on the simulated clock.
  EXPECT_EQ(sched.step(), 2);
  EXPECT_EQ(sched.tenants().at("tight").requests, 1u);
  EXPECT_EQ(sched.tenants().at("loose").requests, 1u);
  EXPECT_EQ(sched.tenants().count("low"), 0u);
  EXPECT_EQ(sched.tenants().at("tight").queue_wait_s, 0.0);

  EXPECT_EQ(sched.step(), 2);
  EXPECT_EQ(sched.tenants().at("low").requests, 2u);
  EXPECT_GT(sched.tenants().at("low").queue_wait_s, 0.0);  // waited a batch
  EXPECT_EQ(sched.step(), 0);  // idle
}

TEST(Scheduler, BillsTenantsEvenSharesOfBatchTime) {
  const Csr<double> a = powerlaw(150, 5.0, 31);
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>("acsr", dev, a);

  acsr::serve::BatchScheduler<double> sched(*engine);
  acsr::apps::run_tenant_scenario(sched, a.cols, /*requests_per_tenant=*/8);

  const auto& tenants = sched.tenants();
  ASSERT_EQ(tenants.size(), 3u);
  EXPECT_EQ(tenants.at("alpha").requests, 8u);
  EXPECT_EQ(tenants.at("beta").requests, 8u);
  EXPECT_EQ(tenants.at("gamma").requests, 16u);
  double billed = 0.0;
  for (const auto& [name, agg] : tenants) {
    EXPECT_GT(agg.cost_s, 0.0) << name;
    EXPECT_GE(agg.batches, 1u) << name;
    billed += agg.cost_s;
  }
  // Conservation: the whole makespan is billed to someone.
  EXPECT_NEAR(billed, sched.clock_s(), 1e-12 + 1e-9 * sched.clock_s());
  // Every registered tenant metric evaluates finitely.
  for (const auto& m : acsr::prof::tenant_metric_registry())
    for (const auto& [name, agg] : tenants)
      EXPECT_TRUE(std::isfinite(m.compute(agg))) << m.name << "/" << name;
}

// --- batched RWR --------------------------------------------------------------

TEST(RwrMany, MatchesScalarRwrPerSource) {
  const Csr<double> w = acsr::apps::rwr_matrix(powerlaw(300, 6.0, 57));
  Device dev(DeviceSpec::gtx_titan());
  acsr::core::AcsrEngine<double> engine(dev, w);

  const std::vector<acsr::mat::index_t> sources = {3, 77, 290};
  const auto many = acsr::apps::rwr_many(engine, sources);
  ASSERT_EQ(many.size(), sources.size());

  for (std::size_t i = 0; i < sources.size(); ++i) {
    acsr::apps::RwrConfig cfg;
    cfg.source = sources[i];
    const auto one = acsr::apps::rwr(engine, cfg);
    EXPECT_EQ(many[i].iterations, one.iterations) << "source " << sources[i];
    EXPECT_EQ(many[i].converged, one.converged);
    ASSERT_EQ(many[i].scores.size(), one.scores.size());
    for (std::size_t r = 0; r < one.scores.size(); ++r)
      EXPECT_NEAR(many[i].scores[r], one.scores[r], 1e-12)
          << "source " << sources[i] << " row " << r;
  }
}

TEST(RwrBatch, ReportsAmortizationHeadline) {
  const Csr<double> w = acsr::apps::rwr_matrix(powerlaw(600, 8.0, 71));
  Device dev(DeviceSpec::gtx_titan());
  acsr::core::AcsrEngine<double> engine(dev, w);

  std::vector<acsr::mat::index_t> sources;
  for (int u = 0; u < 16; ++u) sources.push_back((u * 37) % w.rows);
  const auto res = acsr::apps::rwr_batch(engine, sources);
  EXPECT_EQ(res.queries.size(), sources.size());
  EXPECT_GT(res.spmm_per_iter_s, 0.0);
  EXPECT_GT(res.seq_per_iter_s, res.spmm_per_iter_s);  // batching pays
  EXPECT_GT(res.speedup(), 1.0);
}

}  // namespace
