// ACSR binning semantics: the power-of-two bucket rule, thread-group
// sizing, the G1/G2 (dynamic-parallelism) split, the RowMax cap, and
// bin-coverage invariants.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/binning.hpp"

namespace {

using acsr::Log2Histogram;
using acsr::core::Binning;
using acsr::core::BinningOptions;
using acsr::mat::index_t;
using acsr::mat::offset_t;

TEST(BucketRule, PaperRanges) {
  // Bin 1 holds 1-2 nnz, bin 2 holds 3-4, bin 3 holds 5-8, ...
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(5), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(8), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(33), 6u);
  EXPECT_EQ(Log2Histogram::bucket_of(64), 6u);
  for (std::uint64_t v : {1ull, 2ull, 7ull, 64ull, 1000ull}) {
    const auto b = Log2Histogram::bucket_of(v);
    EXPECT_GT(v, Log2Histogram::bucket_lo(b));
    EXPECT_LE(v, Log2Histogram::bucket_hi(b));
  }
}

TEST(VectorSize, MatchesPaperExamples) {
  // Bin of [1..2] nnz -> 1 thread; bin of [33..64] -> 32 threads.
  EXPECT_EQ(Binning::vector_size_for_bin(1), 1);
  EXPECT_EQ(Binning::vector_size_for_bin(2), 2);
  EXPECT_EQ(Binning::vector_size_for_bin(3), 4);
  EXPECT_EQ(Binning::vector_size_for_bin(6), 32);
  EXPECT_EQ(Binning::vector_size_for_bin(12), 32);  // capped at the warp
}

TEST(Binning, EveryNonEmptyRowAppearsExactlyOnce) {
  std::vector<offset_t> nnz{0, 1, 2, 3, 7, 8, 9, 500, 5000, 0, 64};
  BinningOptions opt;
  opt.bin_max = 5;  // rows with nnz > 32 go to DP
  const Binning b = Binning::build(nnz, opt);
  std::vector<int> seen(nnz.size(), 0);
  for (const auto& bin : b.bins)
    for (index_t r : bin) ++seen[static_cast<std::size_t>(r)];
  for (index_t r : b.dp_rows) ++seen[static_cast<std::size_t>(r)];
  for (std::size_t r = 0; r < nnz.size(); ++r)
    EXPECT_EQ(seen[r], nnz[r] == 0 ? 0 : 1) << "row " << r;
}

TEST(Binning, BinMembershipMatchesRanges) {
  std::vector<offset_t> nnz{1, 2, 3, 4, 5, 8, 9, 16, 17};
  BinningOptions opt;
  opt.bin_max = 10;
  const Binning b = Binning::build(nnz, opt);
  EXPECT_EQ(b.bins[1], (std::vector<index_t>{0, 1}));
  EXPECT_EQ(b.bins[2], (std::vector<index_t>{2, 3}));
  EXPECT_EQ(b.bins[3], (std::vector<index_t>{4, 5}));
  EXPECT_EQ(b.bins[4], (std::vector<index_t>{6, 7}));
  EXPECT_EQ(b.bins[5], (std::vector<index_t>{8}));
  EXPECT_TRUE(b.dp_rows.empty());
  EXPECT_EQ(b.num_nonempty_bins(), 5);
}

TEST(Binning, LongTailGoesToDp) {
  std::vector<offset_t> nnz{4, 4, 2000, 4, 9000, 4};
  BinningOptions opt;
  opt.bin_max = 6;
  const Binning b = Binning::build(nnz, opt);
  // Descending by nnz.
  EXPECT_EQ(b.dp_rows, (std::vector<index_t>{4, 2}));
}

TEST(Binning, RowMaxCapsDpAndOverflowFallsBack) {
  std::vector<offset_t> nnz(10, 1000);
  BinningOptions opt;
  opt.bin_max = 5;
  opt.row_max = 4;
  const Binning b = Binning::build(nnz, opt);
  EXPECT_EQ(b.dp_rows.size(), 4u);
  // The other 6 land in their natural bin (1000 -> bin 10).
  ASSERT_GT(b.bins.size(), 10u);
  EXPECT_EQ(b.bins[10].size(), 6u);
}

TEST(Binning, DpDisabledPutsEverythingInBins) {
  std::vector<offset_t> nnz{4, 40000, 7};
  BinningOptions opt;
  opt.enable_dp = false;
  const Binning b = Binning::build(nnz, opt);
  EXPECT_TRUE(b.dp_rows.empty());
  index_t total = 0;
  for (const auto& bin : b.bins) total += static_cast<index_t>(bin.size());
  EXPECT_EQ(total, 3);
}

TEST(Binning, RowMaxZeroDisablesDp) {
  std::vector<offset_t> nnz{40000};
  BinningOptions opt;
  opt.row_max = 0;
  const Binning b = Binning::build(nnz, opt);
  EXPECT_TRUE(b.dp_rows.empty());
}

TEST(Binning, ChargesOneScanToHostModel) {
  std::vector<offset_t> nnz(100000, 5);
  acsr::vgpu::HostModel hm;
  Binning::build(nnz, BinningOptions{}, &hm);
  EXPECT_GT(hm.seconds(), 0.0);
  // Must stay linear-ish: well under a millisecond of simulated host time
  // for 100k rows (this is ACSR's "preprocessing costs ~3 SpMVs" claim).
  EXPECT_LT(hm.seconds(), 1e-3);
}

}  // namespace
