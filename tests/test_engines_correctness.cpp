// Cross-engine correctness: every engine, on every test matrix, in both
// precisions, must produce — from its *simulated device kernels* — exactly
// the same y as the plain host CSR reference (up to floating-point
// reassociation tolerance), and its host `apply` fast path must match too.
#include <gtest/gtest.h>

#include <cmath>

#include "core/factory.hpp"
#include "graph/powerlaw.hpp"
#include "graph/rmat.hpp"

namespace {

using acsr::core::EngineConfig;
using acsr::core::make_engine;
using acsr::mat::Csr;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceSpec;

Csr<double> make_matrix(const std::string& kind) {
  if (kind == "powerlaw") {
    acsr::graph::PowerLawSpec s;
    s.rows = 600;
    s.cols = 600;
    s.mean_nnz_per_row = 9.0;
    s.alpha = 1.6;
    s.max_row_nnz = 300;
    s.seed = 11;
    return acsr::graph::powerlaw_matrix(s);
  }
  if (kind == "uniform") {
    acsr::graph::PowerLawSpec s;
    s.rows = 400;
    s.cols = 500;  // rectangular
    s.mean_nnz_per_row = 6.0;
    s.alpha = -1.0;
    s.max_row_nnz = 12;
    s.seed = 5;
    return acsr::graph::powerlaw_matrix(s);
  }
  if (kind == "rmat") {
    acsr::graph::RmatParams p;
    p.scale = 9;
    p.edges_per_vertex = 6.0;
    p.seed = 3;
    return Csr<double>::from_coo(acsr::graph::rmat(p));
  }
  if (kind == "empty-rows") {
    // Many empty rows + one long row: exercises bin 0 skipping and DP.
    Csr<double> m;
    m.rows = 100;
    m.cols = 100;
    m.row_off.assign(101, 0);
    for (int c = 0; c < 100; ++c) {
      m.col_idx.push_back(c);
      m.vals.push_back(1.0 + c);
    }
    for (int r = 51; r <= 100; ++r) m.row_off[static_cast<size_t>(r)] = 100;
    m.validate();
    return m;
  }
  if (kind == "zero") {
    // 0x0: every engine must build, launch nothing, and produce an empty y.
    Csr<double> m;
    m.row_off.assign(1, 0);
    m.validate();
    return m;
  }
  if (kind == "all-empty") {
    // Rows but no non-zeros: y must come back as exact zeros.
    Csr<double> m;
    m.rows = 64;
    m.cols = 48;
    m.row_off.assign(65, 0);
    m.validate();
    return m;
  }
  if (kind == "dense-row") {
    // One row past the DP bin threshold (nnz > 2^8 with bin_max = 8) in an
    // otherwise sparse matrix: exercises the row-specific child grid, and
    // the widest-bin fallback in binning-only mode.
    Csr<double> m;
    m.rows = 400;
    m.cols = 400;
    m.row_off.assign(1, 0);
    for (int r = 0; r < 400; ++r) {
      if (r == 37) {
        for (int c = 0; c < 300; ++c) {
          m.col_idx.push_back(c);
          m.vals.push_back(0.5 + 0.001 * c);
        }
      } else if (r % 3 == 0) {
        m.col_idx.push_back((r * 7) % 400);
        m.vals.push_back(1.0 + r);
      }
      m.row_off.push_back(static_cast<acsr::mat::offset_t>(m.col_idx.size()));
    }
    m.validate();
    return m;
  }
  ADD_FAILURE() << "unknown kind " << kind;
  return {};
}

template <class T>
Csr<T> to_t(const Csr<double>& a) {
  Csr<T> m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.row_off = a.row_off;
  m.col_idx = a.col_idx;
  m.vals.reserve(a.vals.size());
  for (double v : a.vals) m.vals.push_back(static_cast<T>(v));
  return m;
}

template <class T>
void check_engine(const std::string& engine_name, const std::string& kind) {
  SCOPED_TRACE(engine_name + " on " + kind +
               (sizeof(T) == 8 ? " (double)" : " (float)"));
  const Csr<T> a = to_t<T>(make_matrix(kind));

  Device dev(DeviceSpec::gtx_titan());
  EngineConfig cfg;
  cfg.hyb_breakeven = 64;  // scaled-down corpus: scale the CUSP constant
  std::unique_ptr<acsr::spmv::SpmvEngine<T>> engine;
  try {
    engine = make_engine<T>(engine_name, dev, a, cfg);
  } catch (const acsr::InputError& e) {
    // Pure ELL legitimately refuses matrices whose max row length would
    // explode the padded slab — the exact pathology HYB exists to fix.
    ASSERT_EQ(engine_name, "ell") << e.what();
    GTEST_SKIP() << "format rejects matrix: " << e.what();
  }

  std::vector<T> x(static_cast<size_t>(a.cols));
  for (size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<T>(0.25 + (i % 17) * 0.125);

  std::vector<T> y_ref;
  a.spmv(x, y_ref);

  std::vector<T> y_apply;
  engine->apply(x, y_apply);
  ASSERT_EQ(y_apply.size(), y_ref.size());

  std::vector<T> y_sim;
  const double t = engine->simulate(x, y_sim);
  if (a.nnz() > 0)
    EXPECT_GT(t, 0.0);
  else
    EXPECT_GE(t, 0.0);  // engines may launch nothing on empty matrices
  ASSERT_EQ(y_sim.size(), y_ref.size());

  const double tol = sizeof(T) == 8 ? 1e-9 : 1e-3;
  for (size_t r = 0; r < y_ref.size(); ++r) {
    const double scale =
        std::max(1.0, std::abs(static_cast<double>(y_ref[r])));
    EXPECT_NEAR(static_cast<double>(y_apply[r]),
                static_cast<double>(y_ref[r]), tol * scale)
        << "apply mismatch at row " << r;
    EXPECT_NEAR(static_cast<double>(y_sim[r]),
                static_cast<double>(y_ref[r]), tol * scale)
        << "simulate mismatch at row " << r;
  }
}

class EngineCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(EngineCorrectness, DoubleMatchesReference) {
  check_engine<double>(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

TEST_P(EngineCorrectness, FloatMatchesReference) {
  check_engine<float>(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllMatrices, EngineCorrectness,
    ::testing::Combine(
        ::testing::Values("csr-scalar", "csr-vector", "ell", "coo", "hyb",
                          "brc", "bccoo", "tcoo", "sic", "bcsr", "sell", "merge-csr",
                          "acsr", "acsr-binning"),
        ::testing::Values("powerlaw", "uniform", "rmat", "empty-rows",
                          "zero", "all-empty", "dense-row")),
    [](const auto& tpi) {
      std::string n = std::get<0>(tpi.param) + "_" + std::get<1>(tpi.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

}  // namespace
