// Performance-shape regression tests: pin the *qualitative* results of the
// paper's evaluation so cost-model changes cannot silently invert them.
// These use corpus-scaled device specs exactly as the benches do.
#include <gtest/gtest.h>

#include "bench/comparators.hpp"
#include "core/multi_gpu.hpp"
#include "graph/corpus.hpp"

namespace {

using namespace acsr;
using bench::BenchContext;

BenchContext make_ctx(const std::string& device = "titan") {
  const char* argv[] = {"test"};
  Cli cli(1, const_cast<char**>(argv));
  BenchContext ctx = BenchContext::from_cli(cli, device);
  ctx.scale = 64;
  ctx.spec = vgpu::DeviceSpec::by_name(device).scaled_for_corpus(64);
  ctx.engine_cfg.hyb_breakeven = 64;
  return ctx;
}

template <class T>
double gflops(const BenchContext& ctx, const std::string& abbrev,
              const std::string& engine) {
  vgpu::Device dev(ctx.spec);
  const auto m = ctx.build<T>(graph::corpus_entry(abbrev));
  auto e = core::make_engine<T>(engine, dev, m, ctx.engine_cfg);
  return e->gflops();
}

TEST(PerfShapes, AcsrBeatsCuSparseCsrOnPowerLaw) {
  const auto ctx = make_ctx();
  // The short-row-dominated matrices are where warp-per-row CSR bleeds.
  for (const char* m : {"YOT", "WEB", "CNR", "FLI"}) {
    SCOPED_TRACE(m);
    EXPECT_GT(gflops<float>(ctx, m, "acsr"),
              1.25 * gflops<float>(ctx, m, "csr"));
  }
}

TEST(PerfShapes, AcsrCompetitiveWithHybAndWinsOnAverage) {
  const auto ctx = make_ctx();
  GeoMean ratio;
  for (const char* m : {"CNR", "EU2", "FLI", "HOL", "LIV", "WIK", "YOT"}) {
    ratio.add(gflops<float>(ctx, m, "acsr") / gflops<float>(ctx, m, "hyb"));
  }
  EXPECT_GT(ratio.value(), 1.05);  // paper: 1.18x average
  EXPECT_LT(ratio.value(), 1.8);   // and not implausibly large
}

TEST(PerfShapes, CsrScalarCollapsesOnPowerLaw) {
  const auto ctx = make_ctx();
  // Divergence: a warp runs at the pace of its longest row.
  EXPECT_GT(gflops<float>(ctx, "WIK", "acsr"),
            3.0 * gflops<float>(ctx, "WIK", "csr-scalar"));
  EXPECT_GT(gflops<float>(ctx, "EU2", "acsr"),
            2.0 * gflops<float>(ctx, "EU2", "csr-scalar"));
}

TEST(PerfShapes, DynamicParallelismRescuesFewHugeRows) {
  const auto ctx = make_ctx();
  // RAL: 66 rows x ~2600 nnz. Binning-only cannot occupy the device.
  EXPECT_GT(gflops<float>(ctx, "RAL", "acsr"),
            2.0 * gflops<float>(ctx, "RAL", "acsr-binning"));
  // But on many-row matrices DP is roughly neutral.
  const double hol_dp = gflops<float>(ctx, "HOL", "acsr");
  const double hol_bin = gflops<float>(ctx, "HOL", "acsr-binning");
  EXPECT_NEAR(hol_dp / hol_bin, 1.0, 0.15);
}

TEST(PerfShapes, PreprocessingOrderingMatchesFig4) {
  const auto ctx = make_ctx();
  const auto& e = graph::corpus_entry("EU2");
  const double acsr = bench::measure_format(ctx, e, "acsr").pre_s;
  const double hyb = bench::measure_format(ctx, e, "hyb").pre_s;
  const double brc = bench::measure_format(ctx, e, "brc").pre_s;
  const double tcoo = bench::measure_format(ctx, e, "tcoo").pre_s;
  const double bccoo = bench::measure_format(ctx, e, "bccoo").pre_s;
  EXPECT_LT(acsr, hyb);
  EXPECT_LT(hyb, brc);
  EXPECT_LT(brc, tcoo);
  EXPECT_LT(tcoo, bccoo);
  // ACSR's preprocessing is on the order of a few SpMVs (paper: ~3).
  const auto acsr_t = bench::measure_format(ctx, e, "acsr");
  EXPECT_LT(acsr_t.pre_s / acsr_t.spmv_s, 10.0);
  // BCCOO's auto-tuning is at least four orders of magnitude.
  const auto bccoo_t = bench::measure_format(ctx, e, "bccoo");
  EXPECT_GT(bccoo_t.pre_s / bccoo_t.spmv_s, 1e4);
}

TEST(PerfShapes, CrossoverFormulaMatchesEq4) {
  // PT_A + n ST_A <= PT_ACSR + n ST_ACSR at the returned n.
  const auto n = bench::crossover_iterations(10.0, 1.0, 0.1, 2.0);
  ASSERT_TRUE(n.has_value());
  EXPECT_NEAR(*n, 9.9, 1e-9);
  EXPECT_NEAR(10.0 + *n * 1.0, 0.1 + *n * 2.0, 1e-9);
  // Slower-or-equal SpMV never catches up.
  EXPECT_FALSE(bench::crossover_iterations(10.0, 2.0, 0.1, 2.0).has_value());
}

TEST(PerfShapes, DoublePrecisionSlowerEverywhere) {
  const auto ctx = make_ctx();
  for (const char* m : {"EU2", "HOL"}) {
    SCOPED_TRACE(m);
    EXPECT_LT(gflops<double>(ctx, m, "acsr"), gflops<float>(ctx, m, "acsr"));
    EXPECT_LT(gflops<double>(ctx, m, "hyb"), gflops<float>(ctx, m, "hyb"));
  }
}

TEST(PerfShapes, Gtx580RunsOutOfMemoryOnUk2) {
  const auto ctx = make_ctx("gtx580");
  vgpu::Device dev(ctx.spec);
  const auto m = ctx.build<double>(graph::corpus_entry("UK2"));
  EXPECT_THROW(core::make_engine<double>("hyb", dev, m, ctx.engine_cfg),
               vgpu::DeviceOom);
}

TEST(PerfShapes, TitanOutperformsOlderDevicesOnBigMatrices) {
  const auto titan = make_ctx("titan");
  const auto k10 = make_ctx("k10");
  const auto gtx580 = make_ctx("gtx580");
  const double t = gflops<float>(titan, "HOL", "acsr");
  EXPECT_GT(t, gflops<float>(k10, "HOL", "acsr-binning"));
  EXPECT_GT(t, gflops<float>(gtx580, "HOL", "acsr-binning"));
}

TEST(PerfShapes, K10DoublePrecisionCrippledByGk104) {
  // GK104 runs DP at 1/24 rate; on a compute-leaning matrix the DP drop
  // on K10 must exceed Titan's (1/3 rate).
  const auto titan = make_ctx("titan");
  const auto k10 = make_ctx("k10");
  const double titan_drop = gflops<float>(titan, "HOL", "acsr-binning") /
                            gflops<double>(titan, "HOL", "acsr-binning");
  const double k10_drop = gflops<float>(k10, "HOL", "acsr-binning") /
                          gflops<double>(k10, "HOL", "acsr-binning");
  EXPECT_GE(k10_drop, titan_drop * 0.95);
}

TEST(PerfShapes, EllPaysPaddingBandwidth) {
  const auto ctx = make_ctx();
  // A matrix ELL accepts but with visible spread: padding inflates bytes.
  vgpu::Device d1(ctx.spec), d2(ctx.spec);
  const auto m = ctx.build<float>(graph::corpus_entry("DBL"));
  auto ell = core::make_engine<float>("ell", d1, m, ctx.engine_cfg);
  auto csr = core::make_engine<float>("csr-vector", d2, m, ctx.engine_cfg);
  EXPECT_GT(ell->report().padding_ratio, 0.3);
  EXPECT_GT(ell->report().device_bytes, csr->report().device_bytes);
}

TEST(PerfShapes, MultiGpuAverageNearPaper) {
  const auto ctx = make_ctx("k10");
  double sum = 0;
  int n = 0;
  for (const char* abbrev : {"EU2", "HOL", "LIV", "YOT"}) {
    const auto m = ctx.build<float>(graph::corpus_entry(abbrev));
    vgpu::Device single(ctx.spec);
    core::AcsrEngine<float> one(single, m, ctx.engine_cfg.acsr);
    vgpu::Device d0(ctx.spec), d1(ctx.spec);
    core::MultiGpuAcsr<float> two({&d0, &d1}, m, ctx.engine_cfg.acsr);
    std::vector<float> x(static_cast<std::size_t>(m.cols), 1.0f), y;
    sum += one.simulate(x, y) / two.simulate(x, y);
    ++n;
  }
  const double avg = sum / n;
  EXPECT_GT(avg, 1.4);  // paper: 1.64x average
  EXPECT_LE(avg, 2.05);
}

}  // namespace
