// CG solver and linear-algebra BFS on top of the SpMV engines.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cg.hpp"
#include "core/factory.hpp"
#include "core/incremental_csr.hpp"
#include "graph/dynamic.hpp"
#include "graph/powerlaw.hpp"

namespace {

using namespace acsr;
using vgpu::Device;
using vgpu::DeviceSpec;

TEST(Laplacian2d, StructureAndSymmetry) {
  const auto a = apps::laplacian_2d<double>(5, 4);
  a.validate();
  EXPECT_EQ(a.rows, 20);
  // Symmetric: A == A^T.
  const auto at = a.transpose();
  EXPECT_EQ(at.row_off, a.row_off);
  EXPECT_EQ(at.col_idx, a.col_idx);
  EXPECT_EQ(at.vals, a.vals);
  // Diagonally dominant with 4 on the diagonal.
  for (mat::index_t r = 0; r < a.rows; ++r) {
    double diag = 0, off = 0;
    for (mat::offset_t i = a.row_off[static_cast<std::size_t>(r)];
         i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i) {
      if (a.col_idx[static_cast<std::size_t>(i)] == r)
        diag = a.vals[static_cast<std::size_t>(i)];
      else
        off += std::abs(a.vals[static_cast<std::size_t>(i)]);
    }
    EXPECT_DOUBLE_EQ(diag, 4.0);
    EXPECT_LE(off, 4.0);
  }
}

TEST(ConjugateGradient, SolvesLaplacianSystem) {
  const auto a = apps::laplacian_2d<double>(24, 24);
  Device dev(DeviceSpec::gtx_titan());
  core::AcsrEngine<double> engine(dev, a);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  const auto res = apps::conjugate_gradient(engine, b);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.iterations, 5);
  EXPECT_GT(res.total_s, 0.0);
  // Check the residual directly: ||A x - b|| small.
  std::vector<double> ax;
  a.spmv(res.x, ax);
  double err = 0;
  for (std::size_t i = 0; i < ax.size(); ++i)
    err += (ax[i] - b[i]) * (ax[i] - b[i]);
  EXPECT_LT(std::sqrt(err), 1e-6);
}

TEST(ConjugateGradient, EngineAgnosticSolution) {
  const auto a = apps::laplacian_2d<double>(16, 16);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0 + (i % 5) * 0.25;
  Device d1(DeviceSpec::gtx_titan()), d2(DeviceSpec::gtx_titan());
  core::EngineConfig cfg;
  cfg.hyb_breakeven = 64;
  auto acsr = core::make_engine<double>("acsr", d1, a, cfg);
  auto hyb = core::make_engine<double>("hyb", d2, a, cfg);
  const auto ra = apps::conjugate_gradient(*acsr, b);
  const auto rh = apps::conjugate_gradient(*hyb, b);
  EXPECT_EQ(ra.iterations, rh.iterations);
  for (std::size_t i = 0; i < ra.x.size(); ++i)
    EXPECT_NEAR(ra.x[i], rh.x[i], 1e-9);
}

TEST(ConjugateGradient, RejectsRectangular) {
  graph::PowerLawSpec s;
  s.rows = 40;
  s.cols = 50;
  s.mean_nnz_per_row = 4.0;
  const auto a = graph::powerlaw_matrix(s);
  Device dev(DeviceSpec::gtx_titan());
  core::AcsrEngine<double> engine(dev, a);
  std::vector<double> b(40, 1.0);
  EXPECT_THROW(apps::conjugate_gradient(engine, b), InvariantError);
}

TEST(Bfs, LevelsOnKnownChain) {
  // 0 -> 1 -> 2 -> 3, plus 0 -> 2 shortcut; 4 isolated.
  mat::Coo<double> c;
  c.rows = 5;
  c.cols = 5;
  c.push(0, 1, 1.0);
  c.push(0, 2, 1.0);
  c.push(1, 2, 1.0);
  c.push(2, 3, 1.0);
  const auto a = mat::Csr<double>::from_coo(c);
  Device dev(DeviceSpec::gtx_titan());
  // BFS expands out-edges: engine holds A^T.
  core::AcsrEngine<double> engine(dev, a.transpose());
  const auto res = apps::bfs(engine, 0);
  EXPECT_EQ(res.level, (std::vector<int>{0, 1, 1, 2, -1}));
  EXPECT_EQ(res.depth, 2);
  EXPECT_EQ(res.visited, 4u);
  EXPECT_GT(res.total_s, 0.0);
}

TEST(Bfs, MatchesHostBfsOnPowerLaw) {
  graph::PowerLawSpec s;
  s.rows = 400;
  s.cols = 400;
  s.mean_nnz_per_row = 5.0;
  s.alpha = 1.6;
  s.max_row_nnz = 80;
  s.seed = 6;
  const auto a = graph::powerlaw_matrix(s);
  Device dev(DeviceSpec::gtx_titan());
  core::AcsrEngine<double> engine(dev, a.transpose());
  const auto res = apps::bfs(engine, 0);

  // Reference: classic queue BFS over the same adjacency.
  std::vector<int> ref(static_cast<std::size_t>(a.rows), -1);
  std::vector<mat::index_t> frontier{0};
  ref[0] = 0;
  int depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::vector<mat::index_t> next;
    for (mat::index_t u : frontier)
      for (mat::offset_t i = a.row_off[static_cast<std::size_t>(u)];
           i < a.row_off[static_cast<std::size_t>(u) + 1]; ++i) {
        const mat::index_t v = a.col_idx[static_cast<std::size_t>(i)];
        if (ref[static_cast<std::size_t>(v)] < 0) {
          ref[static_cast<std::size_t>(v)] = depth;
          next.push_back(v);
        }
      }
    frontier = std::move(next);
  }
  EXPECT_EQ(res.level, ref);
}

TEST(Bfs, SourceValidation) {
  const auto a = apps::laplacian_2d<double>(4, 4);
  Device dev(DeviceSpec::gtx_titan());
  core::AcsrEngine<double> engine(dev, a);
  EXPECT_THROW(apps::bfs(engine, -1), InvariantError);
  EXPECT_THROW(apps::bfs(engine, 16), InvariantError);
}

TEST(UpdateKernelModes, BothProduceIdenticalState) {
  graph::PowerLawSpec s;
  s.rows = 300;
  s.cols = 300;
  s.mean_nnz_per_row = 6.0;
  s.alpha = 1.6;
  s.max_row_nnz = 60;
  s.seed = 12;
  mat::Csr<double> truth = graph::powerlaw_matrix(s);
  Device d1(DeviceSpec::gtx_titan()), d2(DeviceSpec::gtx_titan());
  core::IncrementalCsr<double> lane0(
      d1, truth, 0.5, 0.1, core::UpdateKernelMode::kWarpPerRowLane0);
  core::IncrementalCsr<double> divergent(
      d2, truth, 0.5, 0.1, core::UpdateKernelMode::kThreadPerRow);
  graph::UpdateParams p;
  p.seed = 77;
  const auto batch = graph::generate_update(truth, p);
  graph::apply_update_host(truth, batch);
  lane0.apply_update(batch);
  divergent.apply_update(batch);
  const auto a = lane0.to_csr();
  const auto b = divergent.to_csr();
  EXPECT_EQ(a.col_idx, truth.col_idx);
  EXPECT_EQ(b.col_idx, truth.col_idx);
  EXPECT_EQ(a.vals, b.vals);
}

}  // namespace
