// ACSR engine specifics: dynamic-parallelism routing, binning-only
// degradation on old devices, Table-V grid counts, the incremental CSR
// device update (property-tested against the host reference over many
// epochs), and the multi-GPU partitioner.
#include <gtest/gtest.h>

#include "core/acsr_engine.hpp"
#include "core/incremental_csr.hpp"
#include "core/multi_gpu.hpp"
#include <unordered_set>

#include "graph/dynamic.hpp"
#include "graph/powerlaw.hpp"

namespace {

using namespace acsr;
using core::AcsrEngine;
using core::AcsrOptions;
using core::IncrementalCsr;
using core::MultiGpuAcsr;
using mat::Csr;
using vgpu::Device;
using vgpu::DeviceSpec;

Csr<double> powerlaw(int rows = 800, double mu = 8.0, int max_nnz = 400,
                     std::uint64_t seed = 21) {
  graph::PowerLawSpec s;
  s.rows = rows;
  s.cols = rows;
  s.mean_nnz_per_row = mu;
  s.alpha = 1.6;
  s.max_row_nnz = max_nnz;
  s.seed = seed;
  return graph::powerlaw_matrix(s);
}

TEST(Acsr, DpRoutesLongRowsOnTitan) {
  Device dev(DeviceSpec::gtx_titan());
  AcsrOptions opt;
  opt.binning.bin_max = 5;  // rows > 32 nnz -> DP
  AcsrEngine<double> e(dev, powerlaw(), opt);
  EXPECT_TRUE(e.dynamic_parallelism_active());
  EXPECT_GT(e.row_grids(), 0);
  EXPECT_GT(e.bin_grids(), 0);
  // Child launches observed during a SpMV equal the routed row count.
  std::vector<double> x(800, 1.0), y;
  e.simulate(x, y);
  EXPECT_EQ(e.report().last_run.counters.child_launches,
            static_cast<std::uint64_t>(e.row_grids()));
}

TEST(Acsr, BinningOnlyOnFermi) {
  Device dev(DeviceSpec::gtx580());
  AcsrOptions opt;
  opt.binning.bin_max = 5;
  AcsrEngine<double> e(dev, powerlaw(), opt);
  EXPECT_FALSE(e.dynamic_parallelism_active());
  EXPECT_EQ(e.row_grids(), 0);
  std::vector<double> x(800, 1.0), y, y_ref;
  e.simulate(x, y);
  e.apply(x, y_ref);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-9);
}

TEST(Acsr, RowMaxRespectsPendingLaunchLimit) {
  Device dev(DeviceSpec::gtx_titan());
  AcsrOptions opt;
  opt.binning.bin_max = 1;  // everything above 2 nnz is a DP candidate
  opt.binning.row_max = 16;
  AcsrEngine<double> e(dev, powerlaw(), opt);
  EXPECT_LE(e.row_grids(), 16);
  std::vector<double> x(800, 1.0), y, y_ref;
  e.simulate(x, y);
  e.apply(x, y_ref);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-9);
}

TEST(Acsr, PreprocessingIsCheap) {
  Device dev(DeviceSpec::gtx_titan());
  AcsrEngine<double> e(dev, powerlaw(4000, 10.0, 800, 3));
  // The paper's headline: ACSR preprocessing (scan + metadata upload)
  // costs on the order of a few SpMVs, not tens.
  const double spmv = e.spmv_seconds();
  const double pre = e.report().preprocess_s + e.report().h2d_s -
                     /* matrix upload isn't preprocessing */ 0.0;
  const double scan_plus_meta =
      e.report().preprocess_s;  // host scan only
  EXPECT_LT(scan_plus_meta, 5.0 * spmv);
  (void)pre;
}

TEST(Acsr, ThreadLoadChangesChildGeometry) {
  Device dev(DeviceSpec::gtx_titan());
  AcsrOptions coarse;
  coarse.binning.bin_max = 5;
  coarse.thread_load = 32;
  AcsrOptions fine = coarse;
  fine.thread_load = 1;
  AcsrEngine<double> ec(dev, powerlaw(), coarse);
  AcsrEngine<double> ef(dev, powerlaw(), fine);
  std::vector<double> x(800, 1.0), y;
  ec.simulate(x, y);
  const auto blocks_coarse = ec.report().last_run.counters.child_blocks;
  ef.simulate(x, y);
  const auto blocks_fine = ef.report().last_run.counters.child_blocks;
  EXPECT_GT(blocks_fine, blocks_coarse);  // ThreadLoad=1 spawns more workers
}

TEST(Acsr, MatchesReferenceAcrossBinMaxSweep) {
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> a = powerlaw(600, 7.0, 300, 77);
  std::vector<double> x(600);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.1 + (i % 9) * 0.3;
  std::vector<double> y_ref;
  a.spmv(x, y_ref);
  for (int bin_max : {1, 3, 6, 9, 14}) {
    AcsrOptions opt;
    opt.binning.bin_max = bin_max;
    AcsrEngine<double> e(dev, a, opt);
    std::vector<double> y;
    e.simulate(x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_NEAR(y[i], y_ref[i], 1e-9) << "bin_max " << bin_max;
  }
}

// ---------------------------------------------------------------------------
// Incremental CSR.

TEST(IncrementalCsr, RoundTripsInitialMatrix) {
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> a = powerlaw(300, 6.0, 100, 5);
  IncrementalCsr<double> inc(dev, a);
  const Csr<double> back = inc.to_csr();
  EXPECT_EQ(back.row_off, a.row_off);
  EXPECT_EQ(back.col_idx, a.col_idx);
  EXPECT_EQ(back.vals, a.vals);
  EXPECT_EQ(inc.nnz(), a.nnz());
  EXPECT_GT(inc.bytes(), a.bytes());  // slack costs memory
}

TEST(IncrementalCsr, DeviceUpdateMatchesHostReference) {
  Device dev(DeviceSpec::gtx_titan());
  Csr<double> truth = powerlaw(500, 7.0, 120, 13);
  IncrementalCsr<double> inc(dev, truth);
  for (int epoch = 1; epoch <= 6; ++epoch) {
    graph::UpdateParams p;
    p.seed = 1000 + static_cast<std::uint64_t>(epoch);
    const auto batch = graph::generate_update(truth, p);
    graph::apply_update_host(truth, batch);
    const auto r = inc.apply_update(batch);
    EXPECT_GT(r.h2d_s, 0.0);
    const Csr<double> got = inc.to_csr();
    ASSERT_EQ(got.row_off, truth.row_off) << "epoch " << epoch;
    ASSERT_EQ(got.col_idx, truth.col_idx) << "epoch " << epoch;
    ASSERT_EQ(got.vals, truth.vals) << "epoch " << epoch;
    EXPECT_TRUE(got.rows_sorted());
  }
}

TEST(IncrementalCsr, OverflowRelocatesIntoSpareHeap) {
  Device dev(DeviceSpec::gtx_titan());
  Csr<double> truth = powerlaw(200, 4.0, 30, 3);
  // Tiny per-row slack but a healthy spare heap: the overflowing row
  // relocates instead of forcing a rebuild.
  IncrementalCsr<double> inc(dev, truth, /*slack_factor=*/0.01,
                             /*spare_factor=*/0.5);
  // Insert many columns into row 0 to blow through the tiny slack.
  graph::UpdateBatch<double> batch;
  batch.rows = {0};
  batch.del_off = {0, 0};
  batch.ins_off = {0, 0};
  for (mat::index_t c = 100; c < 140; ++c) {
    bool present = false;
    for (mat::offset_t i = truth.row_off[0]; i < truth.row_off[1]; ++i)
      if (truth.col_idx[static_cast<std::size_t>(i)] == c) present = true;
    if (present) continue;
    batch.ins_cols.push_back(c);
    batch.ins_vals.push_back(1.5);
  }
  batch.ins_off[1] = static_cast<mat::offset_t>(batch.ins_cols.size());
  batch.validate();
  graph::apply_update_host(truth, batch);
  const auto r = inc.apply_update(batch);
  EXPECT_GT(r.overflowed_rows, 0u);
  EXPECT_EQ(r.rebuild_s, 0.0);   // relocated, not rebuilt
  EXPECT_GT(r.kernel_s, 0.0);
  const Csr<double> got = inc.to_csr();
  EXPECT_EQ(got.col_idx, truth.col_idx);
  EXPECT_EQ(got.vals, truth.vals);
}

TEST(IncrementalCsr, ExhaustedSpareHeapTriggersRebuild) {
  Device dev(DeviceSpec::gtx_titan());
  Csr<double> truth = powerlaw(200, 4.0, 30, 3);
  // Almost no spare: the first large overflow cannot relocate.
  IncrementalCsr<double> inc(dev, truth, /*slack_factor=*/0.01,
                             /*spare_factor=*/1e-9);
  graph::UpdateBatch<double> batch;
  batch.rows = {0};
  batch.del_off = {0, 0};
  batch.ins_off = {0, 0};
  std::unordered_set<mat::index_t> present;
  for (mat::offset_t i = truth.row_off[0]; i < truth.row_off[1]; ++i)
    present.insert(truth.col_idx[static_cast<std::size_t>(i)]);
  for (mat::index_t c = 0; c < 120; ++c) {
    if (present.count(c)) continue;
    batch.ins_cols.push_back(c);
    batch.ins_vals.push_back(2.0);
  }
  batch.ins_off[1] = static_cast<mat::offset_t>(batch.ins_cols.size());
  batch.validate();
  graph::apply_update_host(truth, batch);
  const auto r = inc.apply_update(batch);
  EXPECT_GT(r.overflowed_rows, 0u);
  EXPECT_GT(r.rebuild_s, 0.0);
  const Csr<double> got = inc.to_csr();
  EXPECT_EQ(got.col_idx, truth.col_idx);
  EXPECT_EQ(got.vals, truth.vals);
}

TEST(IncrementalCsr, AcsrRunsOnSlackLayout) {
  Device dev(DeviceSpec::gtx_titan());
  Csr<double> truth = powerlaw(400, 8.0, 200, 31);
  IncrementalCsr<double> inc(dev, truth);
  graph::UpdateParams p;
  p.seed = 9;
  const auto batch = graph::generate_update(truth, p);
  graph::apply_update_host(truth, batch);
  inc.apply_update(batch);

  core::Binning binning = core::Binning::build(
      inc.row_lengths(), core::BinningOptions{}, nullptr);
  core::AcsrLauncher<double> launcher(dev, std::move(binning),
                                      AcsrOptions{});
  std::vector<double> x(400);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0 + (i % 3);
  auto xd = dev.alloc<double>(400, "x");
  xd.host() = x;
  auto yd = dev.alloc<double>(400, "y");
  const double t = launcher.run(inc.row_begin(), inc.row_end(),
                                inc.col_idx(), inc.vals(), xd.cspan(),
                                yd.span());
  EXPECT_GT(t, 0.0);
  std::vector<double> y_ref;
  truth.spmv(x, y_ref);
  for (std::size_t i = 0; i < y_ref.size(); ++i)
    EXPECT_NEAR(yd.host()[i], y_ref[i], 1e-9);
}

// ---------------------------------------------------------------------------
// Multi-GPU.

TEST(MultiGpu, PartitionsCoverAllRowsDisjointly) {
  Device d0(DeviceSpec::tesla_k10());
  Device d1(DeviceSpec::tesla_k10());
  const Csr<double> a = powerlaw(700, 8.0, 250, 8);
  MultiGpuAcsr<double> mg({&d0, &d1}, a);
  std::vector<int> seen(700, 0);
  for (int d = 0; d < mg.num_devices(); ++d) {
    const auto& b = mg.engine(d).binning();
    for (const auto& bin : b.bins)
      for (auto r : bin) ++seen[static_cast<std::size_t>(r)];
    for (auto r : b.dp_rows) ++seen[static_cast<std::size_t>(r)];
  }
  for (int r = 0; r < 700; ++r) {
    const auto n = a.row_nnz(r);
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], n == 0 ? 0 : 1)
        << "row " << r;
  }
}

TEST(MultiGpu, ResultMatchesReference) {
  Device d0(DeviceSpec::tesla_k10());
  Device d1(DeviceSpec::tesla_k10());
  const Csr<double> a = powerlaw(500, 7.0, 150, 44);
  MultiGpuAcsr<double> mg({&d0, &d1}, a);
  std::vector<double> x(500);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.5 + (i % 11) * 0.1;
  std::vector<double> y, y_ref;
  mg.simulate(x, y);
  a.spmv(x, y_ref);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-9);
}

TEST(MultiGpu, TwoDevicesFasterOnBigWork) {
  const Csr<double> a = powerlaw(8000, 20.0, 1500, 15);
  // Corpus-scaled overheads, as the benches use: at 1/64 scale the fixed
  // launch gaps must shrink with the matrices or they mask the scaling.
  const DeviceSpec spec = DeviceSpec::tesla_k10().scaled_for_corpus(64);
  Device single(spec);
  AcsrEngine<double> one(single, a);
  Device d0(spec);
  Device d1(spec);
  MultiGpuAcsr<double> two({&d0, &d1}, a);
  std::vector<double> x(8000, 1.0), y;
  const double t1 = one.simulate(x, y);
  const double t2 = two.simulate(x, y);
  EXPECT_LT(t2, t1);           // scaling helps...
  EXPECT_GT(t2, 0.4 * t1);     // ...but at most ~2x
}

TEST(MultiGpu, TinyWorkDoesNotScale) {
  const Csr<double> a = powerlaw(150, 3.0, 20, 2);
  const DeviceSpec spec = DeviceSpec::tesla_k10().scaled_for_corpus(64);
  Device single(spec);
  AcsrEngine<double> one(single, a);
  Device d0(spec);
  Device d1(spec);
  MultiGpuAcsr<double> two({&d0, &d1}, a);
  std::vector<double> x(150, 1.0), y;
  const double t1 = one.simulate(x, y);
  const double t2 = two.simulate(x, y);
  // Launch overhead + sync dominate: two devices are no better (the
  // paper's ENR / INT observation).
  EXPECT_GT(t2, 0.95 * t1);
}

}  // namespace
