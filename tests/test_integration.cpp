// End-to-end integration: corpus generation -> ACSR -> PageRank -> dynamic
// updates -> multi-GPU, exercising the whole stack the way the benches do;
// plus direct tests for the concurrent-group L2 model and the corpus-
// scaled device specs that the integration depends on.
#include <gtest/gtest.h>

#include <cstdio>

#include "apps/dynamic_pagerank.hpp"
#include "core/multi_gpu.hpp"
#include "graph/corpus.hpp"
#include "mat/mm_io.hpp"

namespace {

using namespace acsr;

TEST(ConcurrentGroup, SharesSectorsAcrossLaunches) {
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  auto buf = dev.alloc<float>(4096, "data");
  auto span = buf.cspan();
  auto streaming_kernel = [&](vgpu::Warp& w) {
    const auto idx =
        vgpu::LaneArray<long long>::iota((w.global_warp() % 128) * 32);
    (void)w.load(span, idx, vgpu::kFullMask);
  };
  vgpu::LaunchConfig cfg;
  cfg.grid_dim = 32;
  cfg.block_dim = 128;

  // Outside a group: both launches fetch from DRAM independently.
  const auto solo1 = dev.launch_warps(cfg, streaming_kernel);
  const auto solo2 = dev.launch_warps(cfg, streaming_kernel);
  EXPECT_EQ(solo1.counters.gmem_transactions,
            solo2.counters.gmem_transactions);

  // Inside a group: the second launch's sectors are L2 hits.
  vgpu::ConcurrentGroup group(dev);
  const auto g1 = group.launch_warps(cfg, streaming_kernel);
  const auto g2 = group.launch_warps(cfg, streaming_kernel);
  EXPECT_EQ(g1.counters.gmem_transactions,
            solo1.counters.gmem_transactions);
  EXPECT_EQ(g2.counters.gmem_transactions, 0u);
  EXPECT_EQ(group.unique_sectors(),
            static_cast<std::size_t>(solo1.counters.gmem_transactions));
  EXPECT_GT(group.seconds(), 0.0);
}

TEST(ScaledSpec, ShrinksFixedCostsOnly) {
  const auto base = vgpu::DeviceSpec::gtx_titan();
  const auto scaled = base.scaled_for_corpus(64);
  EXPECT_DOUBLE_EQ(scaled.host_launch_overhead_s,
                   base.host_launch_overhead_s / 64.0);
  EXPECT_DOUBLE_EQ(scaled.transfer_setup_s, base.transfer_setup_s / 64.0);
  EXPECT_EQ(scaled.global_mem_bytes, base.global_mem_bytes / 64);
  // Work-rate parameters untouched.
  EXPECT_DOUBLE_EQ(scaled.dram_bandwidth_gbs, base.dram_bandwidth_gbs);
  EXPECT_DOUBLE_EQ(scaled.clock_ghz, base.clock_ghz);
  EXPECT_EQ(scaled.sm_count, base.sm_count);
  EXPECT_EQ(scaled.pending_launch_limit, base.pending_launch_limit);
  // scale = 1 is the identity.
  EXPECT_DOUBLE_EQ(base.scaled_for_corpus(1).host_launch_overhead_s,
                   base.host_launch_overhead_s);
}

TEST(Integration, CorpusToPagerankToDynamicUpdates) {
  // The full Fig. 6 + Fig. 7 pipeline on one matrix, small scale.
  const auto& entry = graph::corpus_entry("ENR");
  const auto adj = graph::build_matrix(entry, 64, 7);
  const auto operand = apps::pagerank_matrix(adj);

  const auto spec = vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(64);
  vgpu::Device da(spec), dc(spec), dh(spec);
  apps::DynamicPageRankConfig cfg;
  cfg.epochs = 4;
  cfg.hyb_breakeven = 64;
  const auto res = apps::dynamic_pagerank(da, dc, dh, operand, cfg);
  ASSERT_EQ(res.epochs.size(), 4u);
  // Scores are a probability-ish vector over pages.
  double sum = 0;
  for (double v : res.final_scores) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);  // L1-normalised iteration
  // The final matrix reflects three epochs of updates.
  EXPECT_NE(res.final_matrix.nnz(), 0);
  res.final_matrix.validate();
}

TEST(Integration, MatrixMarketFileRoundTripThroughEngines) {
  // Write a corpus matrix to .mtx, read it back, run two engines on it.
  const auto m = graph::build_matrix(graph::corpus_entry("INT"), 64, 3);
  const std::string path = ::testing::TempDir() + "/acsr_int.mtx";
  mat::write_matrix_market_file(m.to_coo(), path);
  const auto loaded =
      mat::Csr<double>::from_coo(mat::read_matrix_market_file(path));
  EXPECT_EQ(loaded.nnz(), m.nnz());
  EXPECT_EQ(loaded.col_idx, m.col_idx);

  const auto spec = vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(64);
  vgpu::Device d1(spec), d2(spec);
  core::AcsrEngine<double> acsr(d1, loaded);
  spmv::HybEngine<double> hyb(d2, loaded, 64);
  std::vector<double> x(static_cast<std::size_t>(loaded.cols), 1.0);
  std::vector<double> ya, yh;
  acsr.simulate(x, ya);
  hyb.simulate(x, yh);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_NEAR(ya[i], yh[i], 1e-9);
  std::remove(path.c_str());
}

TEST(Integration, MultiGpuPageRankMatchesSingle) {
  const auto adj = graph::build_matrix(graph::corpus_entry("ENR"), 64, 9);
  const auto operand = apps::pagerank_matrix(adj);
  const auto spec = vgpu::DeviceSpec::tesla_k10().scaled_for_corpus(64);
  vgpu::Device single(spec);
  core::AcsrEngine<double> one(single, operand);
  vgpu::Device d0(spec), d1(spec);
  core::MultiGpuAcsr<double> two({&d0, &d1}, operand);
  const auto r1 = apps::pagerank(one, apps::PageRankConfig{});
  const auto r2 = apps::pagerank(two, apps::PageRankConfig{});
  EXPECT_EQ(r1.iterations, r2.iterations);
  for (std::size_t i = 0; i < r1.scores.size(); ++i)
    EXPECT_NEAR(r1.scores[i], r2.scores[i], 1e-12);
}

}  // namespace
