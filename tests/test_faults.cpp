// Fault-injection framework + resilient driver tests (docs/RESILIENCE.md).
//
// Every injectable fault class is exercised twice: once raw (the typed
// error surfaces from the vgpu hook with device/kernel attribution) and
// once through ResilientEngine (the driver recovers and the recovered SpMV
// is bit-identical to a clean run of the same format on the same device
// spec). MultiGpuAcsr's repartitioning recovery and the checkpointed
// solvers' restart protocol close the stack: an injected whole-device loss
// mid-PageRank must converge to the same ranks as the fault-free run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/cg.hpp"
#include "apps/pagerank.hpp"
#include "core/factory.hpp"
#include "core/multi_gpu.hpp"
#include "core/resilient.hpp"
#include "graph/powerlaw.hpp"
#include "mat/padded.hpp"
#include "prof/prof.hpp"
#include "vgpu/fault.hpp"

namespace {

using acsr::core::EngineConfig;
using acsr::core::make_engine;
using acsr::core::MultiGpuAcsr;
using acsr::core::ResilienceOptions;
using acsr::core::ResilientEngine;
using acsr::mat::Csr;
using acsr::mat::index_t;
using acsr::mat::offset_t;
using acsr::vgpu::DataCorruption;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceLost;
using acsr::vgpu::DeviceOom;
using acsr::vgpu::DeviceSpec;
using acsr::vgpu::FaultInjector;
using acsr::vgpu::FaultKind;
using acsr::vgpu::TransientFault;

/// Every test leaves the injector disabled, whatever path it exits by.
class Faults : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().disable(); }
};

Csr<double> test_matrix(index_t n = 64) {
  acsr::graph::PowerLawSpec s;
  s.rows = n;
  s.cols = n;
  s.mean_nnz_per_row = 6.0;
  s.alpha = 1.6;
  s.max_row_nnz = n / 2;
  s.seed = 7;
  Csr<double> m = acsr::graph::powerlaw_matrix(s);
  // Keep every value positive so SpMV sums are cancellation-free.
  for (auto& v : m.vals) v = 0.5 + v * 0.25;
  return m;
}

std::vector<double> ones(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

/// The reference the recovered runs must match bitwise: a clean simulate()
/// of `format` on a fresh device of the same spec, injector off.
std::vector<double> clean_simulate(const Csr<double>& a,
                                   const std::string& format,
                                   const std::vector<double>& x) {
  FaultInjector::instance().disable();
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>(format, dev, a);
  std::vector<double> y;
  engine->simulate(x, y);
  return y;
}

bool timeline_has(const acsr::vgpu::StreamTimeline& tl,
                  const std::string& needle) {
  for (const auto& e : tl.log())
    if (e.tag.find(needle) != std::string::npos) return true;
  return false;
}

// --- plan parsing ----------------------------------------------------------

TEST_F(Faults, PlanGrammarParses) {
  auto& inj = FaultInjector::instance();
  inj.configure(
      "transient@launch#3*2;ecc@launch#9:seed=7;lost@launch#40;"
      "oom@alloc#1;corrupt@transfer#2:silent=1;stall@transfer#5:ms=20");
  ASSERT_EQ(inj.plan().size(), 6u);
  EXPECT_TRUE(inj.enabled());
  EXPECT_TRUE(acsr::vgpu::fault_injection_enabled());
  EXPECT_EQ(inj.plan()[0].at, 3);
  EXPECT_EQ(inj.plan()[0].count, 2);
  EXPECT_EQ(inj.plan()[1].seed, 7u);
  EXPECT_TRUE(inj.plan()[4].silent);
  EXPECT_DOUBLE_EQ(inj.plan()[5].stall_s, 0.020);

  inj.configure("");
  EXPECT_FALSE(inj.enabled());
  EXPECT_FALSE(acsr::vgpu::fault_injection_enabled());
}

TEST_F(Faults, PlanGrammarRejectsGarbage) {
  auto& inj = FaultInjector::instance();
  EXPECT_THROW(inj.configure("oops"), acsr::InputError);
  EXPECT_THROW(inj.configure("oom@launch#1"), acsr::InputError);   // bad site
  EXPECT_THROW(inj.configure("zap@alloc#1"), acsr::InputError);    // bad kind
  EXPECT_THROW(inj.configure("oom@alloc#0"), acsr::InputError);    // 1-based
  EXPECT_THROW(inj.configure("oom@alloc#x"), acsr::InputError);
  EXPECT_THROW(inj.configure("oom@alloc#1:wat=1"), acsr::InputError);
  EXPECT_THROW(inj.configure("stall@transfer#1:ms=abc"), acsr::InputError);
  // A failed configure must not leave injection half-armed.
  EXPECT_FALSE(acsr::vgpu::fault_injection_enabled());
}

TEST_F(Faults, DisabledByDefault) {
  // ctest runs without ACSR_FAULTS; the guard must read disabled and every
  // engine path must behave exactly as the seed (the metering-invariance
  // suite pins the numbers; this pins the switch).
  if (std::getenv("ACSR_FAULTS") != nullptr) GTEST_SKIP();
  EXPECT_FALSE(acsr::vgpu::fault_injection_enabled());
  EXPECT_EQ(FaultInjector::instance().plan().size(), 0u);
}

// --- raw fault classes (typed error + attribution) -------------------------

TEST_F(Faults, InjectedAllocOomIsTyped) {
  FaultInjector::instance().configure("oom@alloc#1");
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> a = test_matrix();
  EXPECT_THROW(make_engine<double>("csr", dev, a), DeviceOom);
  const auto& ev = FaultInjector::instance().events();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, FaultKind::kAllocOom);
  EXPECT_EQ(ev[0].site, "alloc");
  EXPECT_EQ(ev[0].device, dev.spec().name);
}

TEST_F(Faults, TransientLaunchIsTypedWithAttribution) {
  FaultInjector::instance().configure("transient@launch#1");
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> a = test_matrix();
  auto engine = make_engine<double>("csr-scalar", dev, a);
  std::vector<double> y;
  try {
    engine->simulate(ones(static_cast<std::size_t>(a.cols)), y);
    FAIL() << "expected TransientFault";
  } catch (const TransientFault& e) {
    EXPECT_EQ(e.device(), dev.spec().name);
    EXPECT_FALSE(e.where().empty());  // the kernel name
  }
  // Cleared after the firing window: the retry succeeds.
  const double t = engine->simulate(ones(static_cast<std::size_t>(a.cols)), y);
  EXPECT_GT(t, 0.0);
}

TEST_F(Faults, EccFlipCorruptsARegisteredBufferAndIsDetected) {
  FaultInjector::instance().configure("ecc@launch#1:seed=11");
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> a = test_matrix();
  auto engine = make_engine<double>("csr", dev, a);
  ASSERT_GT(FaultInjector::instance().registered_buffers(), 0u);
  std::vector<double> y;
  EXPECT_THROW(engine->simulate(ones(static_cast<std::size_t>(a.cols)), y),
               DataCorruption);
  const auto& ev = FaultInjector::instance().events();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, FaultKind::kEccFlip);
  EXPECT_FALSE(ev[0].buffer.empty());  // names the struck allocation
}

TEST_F(Faults, SilentEccFlipRaisesNoSignal) {
  FaultInjector::instance().configure("ecc@launch#1:seed=11:silent=1");
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> a = test_matrix();
  auto engine = make_engine<double>("csr", dev, a);
  std::vector<double> y;
  // No throw — the flip happened but nothing reported it. (Whether the
  // *result* is wrong depends on which buffer/bit was struck; the
  // application-level guards in apps/checkpoint.hpp are the net for that.)
  try {
    engine->simulate(ones(static_cast<std::size_t>(a.cols)), y);
  } catch (const acsr::InvariantError&) {
    // Acceptable: a flipped *index* can send a kernel out of bounds, which
    // the span checks catch. What must NOT appear is a corruption signal.
  }
  EXPECT_EQ(FaultInjector::instance().count(FaultKind::kEccFlip), 1u);
}

TEST_F(Faults, TransferCorruptionIsTyped) {
  FaultInjector::instance().configure("corrupt@transfer#1:seed=3");
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> a = test_matrix();
  // The first H2D upload of the build trips the CRC failure.
  EXPECT_THROW(make_engine<double>("csr", dev, a), DataCorruption);
  EXPECT_EQ(FaultInjector::instance().count(FaultKind::kTransferCorrupt), 1u);
}

TEST_F(Faults, TransferStallOnlyAddsTime) {
  const Csr<double> a = test_matrix();
  FaultInjector::instance().disable();
  Device clean_dev(DeviceSpec::gtx_titan());
  auto clean = make_engine<double>("csr", clean_dev, a);
  const double clean_h2d = clean->report().h2d_s;

  FaultInjector::instance().configure("stall@transfer#1:ms=20");
  Device dev(DeviceSpec::gtx_titan());
  auto engine = make_engine<double>("csr", dev, a);
  EXPECT_NEAR(engine->report().h2d_s, clean_h2d + 0.020, 1e-12);
  EXPECT_EQ(engine->report().h2d_bytes, clean->report().h2d_bytes);

  // And the stalled build still computes correctly.
  std::vector<double> y_clean, y_stalled;
  const auto x = ones(static_cast<std::size_t>(a.cols));
  clean->simulate(x, y_clean);
  engine->simulate(x, y_stalled);
  EXPECT_EQ(y_clean, y_stalled);
}

TEST_F(Faults, DeviceLossPoisonsEveryLaterOperation) {
  FaultInjector::instance().configure("lost@launch#1");
  Device dev(DeviceSpec::gtx_titan());
  const Csr<double> a = test_matrix();
  auto engine = make_engine<double>("csr-scalar", dev, a);
  std::vector<double> y;
  const auto x = ones(static_cast<std::size_t>(a.cols));
  EXPECT_THROW(engine->simulate(x, y), DeviceLost);
  EXPECT_TRUE(dev.lost());
  // Lost is sticky: alloc, launch, transfer all refuse from now on.
  EXPECT_THROW(engine->simulate(x, y), DeviceLost);
  EXPECT_THROW(dev.alloc<double>(8, "post-loss"), DeviceLost);
  EXPECT_THROW(dev.note_transfer(64), DeviceLost);
}

// --- ResilientEngine recovery ladder ---------------------------------------

TEST_F(Faults, ResilientRetriesTransientAndChargesBackoff) {
  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));
  const std::vector<double> want = clean_simulate(a, "acsr", x);

  FaultInjector::instance().configure("transient@launch#40*2");
  Device dev(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&dev}, a, "acsr");
  std::vector<double> y;
  double total = 0.0;
  bool hit = false;
  for (int i = 0; i < 12; ++i) {
    total += engine.simulate(x, y);
    EXPECT_EQ(y, want) << "iteration " << i;
    hit = hit || engine.retries() > 0;
  }
  EXPECT_TRUE(hit) << "plan never fired (too few launches?)";
  EXPECT_EQ(engine.active_format(), "acsr");
  EXPECT_TRUE(timeline_has(engine.timeline(), "fault:transient"));
  EXPECT_TRUE(timeline_has(engine.timeline(), "recovery:retry"));
  // The backoff is charged to the simulated clock.
  EXPECT_GT(engine.timeline().busy_seconds(), 0.0);
  EXPECT_GT(total, 0.0);
}

TEST_F(Faults, ProfilerBackoffMatchesTimelineCharge) {
  // The profiler's fault-retry attribution must equal the backoff
  // ResilientEngine charges to the simulated clock: both observe the same
  // `backoff` values in the same order. Timeline entries store absolute
  // (start, end) stamps, so recovering the duration as end - start can
  // round in the last ulp — hence DOUBLE_EQ, not bit equality.
  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));

  acsr::prof::Profiler& prof = acsr::prof::Profiler::instance();
  prof.clear();
  acsr::prof::set_profiler_enabled(true);
  FaultInjector::instance().configure("transient@launch#40*3");
  Device dev(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&dev}, a, "acsr");
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) engine.simulate(x, y);
  acsr::prof::set_profiler_enabled(false);

  ASSERT_GE(engine.retries(), 1) << "plan never fired";
  double timeline_backoff = 0.0;
  for (const auto& e : engine.timeline().log())
    if (e.tag.find("recovery:retry backoff") != std::string::npos)
      timeline_backoff += e.end_s - e.start_s;
  EXPECT_GT(timeline_backoff, 0.0);
  EXPECT_DOUBLE_EQ(prof.retry_backoff_s(), timeline_backoff);

  // Each fault also leaves instant marks in the trace.
  int fault_instants = 0;
  for (const auto& inst : prof.instants())
    if (inst.name.find("fault:") != std::string::npos) ++fault_instants;
  EXPECT_GE(fault_instants, engine.retries());
  prof.clear();
}

TEST_F(Faults, ResilientScrubsDetectedCorruption) {
  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));
  const std::vector<double> want = clean_simulate(a, "csr", x);

  FaultInjector::instance().configure("ecc@launch#6:seed=5");
  Device dev(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&dev}, a, "csr");
  std::vector<double> y;
  for (int i = 0; i < 8; ++i) {
    engine.simulate(x, y);
    EXPECT_EQ(y, want) << "iteration " << i;
  }
  EXPECT_GE(engine.scrubs(), 1);
  EXPECT_TRUE(timeline_has(engine.timeline(), "fault:corruption"));
  EXPECT_TRUE(timeline_has(engine.timeline(), "recovery:scrub"));
}

TEST_F(Faults, ResilientSurvivesCorruptionDuringBuild) {
  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));
  const std::vector<double> want = clean_simulate(a, "csr", x);

  FaultInjector::instance().configure("corrupt@transfer#1:seed=9");
  Device dev(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&dev}, a, "csr");  // build hits the fault
  EXPECT_GE(engine.scrubs(), 1);
  std::vector<double> y;
  engine.simulate(x, y);
  EXPECT_EQ(y, want);
}

TEST_F(Faults, ResilientFallsBackOnInjectedPreprocessingOom) {
  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));

  FaultInjector::instance().configure("oom@alloc#1");
  Device dev(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&dev}, a, "acsr");
  EXPECT_EQ(engine.active_format(), "csr-vector");
  EXPECT_GE(engine.fallbacks(), 1);
  EXPECT_TRUE(timeline_has(engine.timeline(), "recovery:fallback"));

  const std::vector<double> want = clean_simulate(a, "csr-vector", x);
  FaultInjector::instance().configure("transient@launch#100000");  // re-arm,
  // never fires: keeps injection enabled without further faults.
  std::vector<double> y;
  engine.simulate(x, y);
  EXPECT_EQ(y, want);
}

TEST_F(Faults, ResilientFallsBackOnGenuineFormatRefusal) {
  // Pure ELL refuses a hub-and-spokes matrix (expansion bound, InputError):
  // the chain degrades to CSR-scalar with no injector involved.
  Csr<double> a;
  a.rows = a.cols = 400;
  a.row_off.assign(401, 0);
  for (index_t c = 0; c < 400; ++c) {
    a.col_idx.push_back(c);
    a.vals.push_back(1.0);
  }
  a.row_off[1] = 400;  // row 0 holds everything
  for (std::size_t r = 2; r <= 400; ++r) a.row_off[r] = 400;
  a.validate();

  Device dev(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&dev}, a, "ell");
  EXPECT_EQ(engine.active_format(), "csr-scalar");
  EXPECT_GE(engine.fallbacks(), 1);

  const auto x = ones(400);
  const std::vector<double> want = clean_simulate(a, "csr-scalar", x);
  std::vector<double> y;
  engine.simulate(x, y);
  EXPECT_EQ(y, want);
}

TEST_F(Faults, ResilientExhaustedChainPropagatesOom) {
  const Csr<double> a = test_matrix();
  // Every alloc fails. Construction still settles on the terminal rung —
  // the out-of-core tier allocates nothing at build time — but the first
  // SpMV must allocate slab buffers, and with the whole chain spent the
  // OOM escapes typed instead of being swallowed.
  FaultInjector::instance().configure("oom@alloc#1*1000000");
  Device dev(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&dev}, a, "acsr");
  EXPECT_EQ(engine.active_format(), "ooc-csr");
  EXPECT_GE(engine.fallbacks(), 3);
  const auto x = ones(static_cast<std::size_t>(a.cols));
  std::vector<double> y;
  EXPECT_THROW(engine.simulate(x, y), DeviceOom);
}

TEST_F(Faults, ResilientFailsOverToStandbyDevice) {
  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));
  const std::vector<double> want = clean_simulate(a, "acsr", x);

  FaultInjector::instance().configure("lost@launch#40");
  Device primary(DeviceSpec::gtx_titan());
  Device standby(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&primary, &standby}, a, "acsr");
  std::vector<double> y;
  bool failed_over = false;
  for (int i = 0; i < 12; ++i) {
    engine.simulate(x, y);
    EXPECT_EQ(y, want) << "iteration " << i;
    failed_over = failed_over || engine.failovers() > 0;
  }
  EXPECT_TRUE(failed_over) << "plan never fired";
  EXPECT_TRUE(primary.lost());
  EXPECT_EQ(&engine.active_device(), &standby);
  EXPECT_TRUE(timeline_has(engine.timeline(), "fault:lost"));
  EXPECT_TRUE(timeline_has(engine.timeline(), "recovery:failover"));
}

TEST_F(Faults, ResilientWithoutStandbyPropagatesLoss) {
  const Csr<double> a = test_matrix();
  FaultInjector::instance().configure("lost@launch#40");
  Device dev(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&dev}, a, "acsr");
  std::vector<double> y;
  const auto x = ones(static_cast<std::size_t>(a.cols));
  try {
    for (int i = 0; i < 12; ++i) engine.simulate(x, y);
    FAIL() << "expected DeviceLost";
  } catch (const DeviceLost& e) {
    EXPECT_EQ(e.device(), dev.spec().name);
  }
}

// --- padded-size overflow audit (satellite) --------------------------------

TEST_F(Faults, PaddedSlotArithmeticOverflowIsDeviceOom) {
  using acsr::mat::checked_padded_slots;
  // In-range product passes through.
  EXPECT_EQ(checked_padded_slots(1000, 50, 12, "ELL slab"), 50000u);
  // Product past the slab cap — or past 2^64 — is DeviceOom, never an
  // InvariantError abort.
  EXPECT_THROW(checked_padded_slots(3000000000ull, 2000000000ull, 12, "ELL"),
               DeviceOom);
  EXPECT_THROW(checked_padded_slots(1ull << 62, 1ull << 62, 8, "BCCOO"),
               DeviceOom);
}

TEST_F(Faults, EllSlabOverflowIsDeviceOom) {
  Csr<double> a;  // 2M empty rows: tiny CSR, astronomical padded slab
  a.rows = 1 << 21;
  a.cols = 1 << 21;
  a.row_off.assign(static_cast<std::size_t>(a.rows) + 1, 0);
  a.validate();
  EXPECT_THROW(
      acsr::mat::Ell<double>::from_csr_with_width(a, 1 << 21),
      DeviceOom);
}

// --- MultiGpuAcsr degenerate cases + repartition recovery ------------------

TEST_F(Faults, MultiGpuSingleDeviceMatchesSingleEngine) {
  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));
  Device dev(DeviceSpec::gtx_titan());
  MultiGpuAcsr<double> multi({&dev}, a);
  EXPECT_EQ(multi.num_devices(), 1);
  std::vector<double> y_multi, y_ref;
  multi.simulate(x, y_multi);
  a.spmv(x, y_ref);
  ASSERT_EQ(y_multi.size(), y_ref.size());
  for (std::size_t r = 0; r < y_ref.size(); ++r)
    EXPECT_NEAR(y_multi[r], y_ref[r], 1e-9) << "row " << r;
}

TEST_F(Faults, MultiGpuMoreDevicesThanRows) {
  Csr<double> a;  // 3 rows across 4 devices: some replicas get no rows
  a.rows = a.cols = 3;
  a.row_off = {0, 1, 2, 3};
  a.col_idx = {0, 1, 2};
  a.vals = {2.0, 3.0, 4.0};
  a.validate();
  Device d0(DeviceSpec::gtx_titan()), d1(DeviceSpec::gtx_titan());
  Device d2(DeviceSpec::gtx_titan()), d3(DeviceSpec::gtx_titan());
  MultiGpuAcsr<double> multi({&d0, &d1, &d2, &d3}, a);
  std::vector<double> y;
  multi.simulate(ones(3), y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST_F(Faults, MultiGpuRepartitionsAfterDeviceLossMidIteration) {
  const Csr<double> a = test_matrix(128);
  const auto x = ones(static_cast<std::size_t>(a.cols));
  std::vector<double> y_ref;
  a.spmv(x, y_ref);

  // Arm injection with a clause that never fires: the lost() checks are
  // live, and the loss itself is forced deterministically mid-sequence.
  FaultInjector::instance().configure("transient@launch#100000000");
  Device d0(DeviceSpec::gtx_titan()), d1(DeviceSpec::gtx_titan());
  Device d2(DeviceSpec::gtx_titan());
  MultiGpuAcsr<double> multi({&d0, &d1, &d2}, a);
  std::vector<double> y;
  multi.simulate(x, y);  // healthy iteration first
  EXPECT_TRUE(multi.recovery_log().empty());

  d1.mark_lost();  // strike between iterations
  multi.simulate(x, y);
  ASSERT_EQ(multi.recovery_log().size(), 1u);
  EXPECT_NE(multi.recovery_log()[0].find("3 -> 2"), std::string::npos)
      << multi.recovery_log()[0];
  EXPECT_EQ(multi.num_devices(), 2);
  for (std::size_t r = 0; r < y_ref.size(); ++r)
    EXPECT_NEAR(y[r], y_ref[r], 1e-9) << "row " << r;

  // Lose another survivor: degrade again, down to one device.
  d0.mark_lost();
  multi.simulate(x, y);
  EXPECT_EQ(multi.num_devices(), 1);
  for (std::size_t r = 0; r < y_ref.size(); ++r)
    EXPECT_NEAR(y[r], y_ref[r], 1e-9) << "row " << r;

  // Lose the last: typed DeviceLost, no crash.
  d2.mark_lost();
  EXPECT_THROW(multi.simulate(x, y), DeviceLost);
}

// --- checkpointed solvers under fire ---------------------------------------

Csr<double> pagerank_test_matrix() {
  acsr::graph::PowerLawSpec s;
  s.rows = 96;
  s.cols = 96;
  s.mean_nnz_per_row = 4.0;
  s.alpha = 1.5;
  s.max_row_nnz = 40;
  s.seed = 21;
  Csr<double> adj = acsr::graph::powerlaw_matrix(s);
  for (auto& v : adj.vals) v = 1.0;
  // Give empty rows a self-loop so the matrix is genuinely row-stochastic.
  acsr::mat::Coo<double> c = adj.to_coo();
  for (index_t r = 0; r < adj.rows; ++r)
    if (adj.row_nnz(r) == 0) c.push(r, r, 1.0);
  return acsr::apps::pagerank_matrix(Csr<double>::from_coo(c));
}

TEST_F(Faults, CheckpointedPagerankSurvivesDeviceLoss) {
  const Csr<double> m = pagerank_test_matrix();
  acsr::apps::PageRankConfig cfg;
  acsr::apps::CheckpointConfig ck;
  ck.interval = 4;

  // Fault-free reference, same engine stack and device spec.
  FaultInjector::instance().disable();
  Device c0(DeviceSpec::gtx_titan()), c1(DeviceSpec::gtx_titan());
  ResilientEngine<double> clean_engine({&c0, &c1}, m, "acsr");
  const auto want = acsr::apps::pagerank_checkpointed(clean_engine, cfg, ck);
  ASSERT_TRUE(want.converged);

  // Faulted run: whole-device loss strikes mid-iteration.
  FaultInjector::instance().configure("lost@launch#60");
  Device d0(DeviceSpec::gtx_titan()), d1(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&d0, &d1}, m, "acsr");
  const auto got = acsr::apps::pagerank_checkpointed(engine, cfg, ck);

  ASSERT_TRUE(got.converged);
  EXPECT_GE(engine.failovers(), 1) << "plan never fired";
  ASSERT_EQ(got.scores.size(), want.scores.size());
  // Deterministic replay: restarted iterations recompute identical values,
  // so the faulted run converges to the same ranks (well inside the 1e-9
  // engine-agnostic tolerance; bitwise in practice).
  for (std::size_t i = 0; i < want.scores.size(); ++i)
    EXPECT_NEAR(got.scores[i], want.scores[i], 1e-9) << "rank " << i;
  // The whole story is on one timeline: fault, failover, restart,
  // checkpoint.
  EXPECT_TRUE(timeline_has(engine.timeline(), "fault:lost"));
  EXPECT_TRUE(timeline_has(engine.timeline(), "recovery:failover"));
  EXPECT_TRUE(timeline_has(engine.timeline(), "restart:"));
  EXPECT_TRUE(timeline_has(engine.timeline(), "checkpoint@"));
  // The wasted attempts cost simulated time: the faulted run is never
  // cheaper than the clean one.
  EXPECT_GE(got.total_s, want.total_s);
}

TEST_F(Faults, CheckpointedCgSurvivesTransientStorm) {
  const Csr<double> a = acsr::apps::laplacian_2d<double>(12, 12);
  const std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  acsr::apps::CheckpointConfig ck;
  ck.interval = 8;

  FaultInjector::instance().disable();
  Device c0(DeviceSpec::gtx_titan());
  ResilientEngine<double> clean_engine({&c0}, a, "csr");
  const auto want = acsr::apps::conjugate_gradient_checkpointed(
      clean_engine, b, {}, ck);
  ASSERT_TRUE(want.converged);

  FaultInjector::instance().configure("transient@launch#10*3");
  Device d0(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&d0}, a, "csr");
  const auto got =
      acsr::apps::conjugate_gradient_checkpointed(engine, b, {}, ck);
  ASSERT_TRUE(got.converged);
  EXPECT_GE(engine.retries(), 1);
  EXPECT_EQ(got.iterations, want.iterations);
  for (std::size_t i = 0; i < want.x.size(); ++i)
    EXPECT_NEAR(got.x[i], want.x[i], 1e-9) << "x[" << i << "]";
}

TEST_F(Faults, CheckpointedPowerMethodSurvivesCorruption) {
  const Csr<double> a = test_matrix(48);
  acsr::apps::CheckpointConfig ck;
  ck.interval = 4;

  FaultInjector::instance().disable();
  Device c0(DeviceSpec::gtx_titan());
  ResilientEngine<double> clean_engine({&c0}, a, "csr");
  const auto want = acsr::apps::power_method_checkpointed(clean_engine, {}, ck);

  // The power method on this matrix converges in ~13 csr launches (one
  // per iteration), so strike mid-run.
  FaultInjector::instance().configure("ecc@launch#8:seed=13");
  Device d0(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&d0}, a, "csr");
  const auto got = acsr::apps::power_method_checkpointed(engine, {}, ck);
  EXPECT_GE(engine.scrubs(), 1);
  EXPECT_EQ(got.iterations, want.iterations);
  ASSERT_EQ(got.scores.size(), want.scores.size());
  for (std::size_t i = 0; i < want.scores.size(); ++i)
    EXPECT_NEAR(got.scores[i], want.scores[i], 1e-9) << "score " << i;
}

TEST_F(Faults, RestartBudgetExhaustionKeepsTheTypedFault) {
  const Csr<double> m = pagerank_test_matrix();
  acsr::apps::PageRankConfig cfg;
  acsr::apps::CheckpointConfig ck;
  ck.interval = 4;
  ck.max_restarts = 0;  // no budget: the first escaped fault must surface
  // Loss with no standby: the driver cannot recover, the solver cannot
  // restart, and the caller gets the typed DeviceLost — not a crash, not
  // a silent wrong answer.
  FaultInjector::instance().configure("lost@launch#60");
  Device d0(DeviceSpec::gtx_titan());
  ResilientEngine<double> engine({&d0}, m, "acsr");
  EXPECT_THROW(acsr::apps::pagerank_checkpointed(engine, cfg, ck),
               DeviceLost);
}

// --- env-driven smoke (scripts/check.sh fault matrix) ----------------------

// check.sh runs this test once per representative plan with ACSR_FAULTS set
// in the environment: whatever the plan, the resilient stack must either
// recover bit-correct or surface a typed DeviceFault — never crash.
TEST(FaultEnv, PlanFromEnvironmentIsSurvivable) {
  const char* plan = std::getenv("ACSR_FAULTS");
  if (plan == nullptr || plan[0] == '\0')
    GTEST_SKIP() << "ACSR_FAULTS not set";
  ASSERT_TRUE(acsr::vgpu::fault_injection_enabled());

  const Csr<double> a = test_matrix();
  const auto x = ones(static_cast<std::size_t>(a.cols));
  const std::vector<double> want = clean_simulate(a, "acsr", x);
  FaultInjector::instance().configure(plan);  // re-arm after the clean run

  Device d0(DeviceSpec::gtx_titan()), d1(DeviceSpec::gtx_titan());
  std::vector<double> y;
  try {
    ResilientEngine<double> engine({&d0, &d1}, a, "acsr");
    for (int i = 0; i < 8; ++i) {
      engine.simulate(x, y);
      const std::vector<double> ref =
          engine.active_format() == "acsr"
              ? want
              : clean_simulate(a, engine.active_format(), x);
      FaultInjector::instance().configure(plan);  // counters reset per pass
      ASSERT_EQ(y, ref) << "recovered result diverged under plan '" << plan
                        << "' (iteration " << i << ")";
    }
    std::cout << "[faults] plan '" << plan << "' recovered: retries="
              << engine.retries() << " scrubs=" << engine.scrubs()
              << " fallbacks=" << engine.fallbacks()
              << " failovers=" << engine.failovers() << "\n";
  } catch (const acsr::vgpu::DeviceFault& e) {
    // Typed escalation is a legal outcome (e.g. loss of every device);
    // attribution must be intact.
    EXPECT_FALSE(e.device().empty());
    std::cout << "[faults] plan '" << plan << "' escalated typed: "
              << e.what() << "\n";
  } catch (const DeviceOom& e) {
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
    std::cout << "[faults] plan '" << plan << "' escalated typed: "
              << e.what() << "\n";
  }
  FaultInjector::instance().disable();
}

}  // namespace
