// Kernel execution & cost model: grid geometry, block phases as barriers,
// dynamic parallelism (incl. pending-launch limit and the CC < 3.5 guard),
// the roofline terms, and timeline composition.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "vgpu/device.hpp"

namespace {

using namespace acsr::vgpu;

TEST(KernelExec, GridGeometry) {
  Device dev(DeviceSpec::gtx_titan());
  LaunchConfig cfg;
  cfg.grid_dim = 5;
  cfg.block_dim = 96;  // 3 warps
  std::vector<int> seen_blocks;
  long long warp_count = 0;
  const KernelRun run = dev.launch(cfg, [&](Block& blk) {
    seen_blocks.push_back(static_cast<int>(blk.block_idx()));
    EXPECT_EQ(blk.block_dim(), 96);
    EXPECT_EQ(blk.grid_dim(), 5);
    EXPECT_EQ(blk.warps_per_block(), 3);
    blk.each_warp([&](Warp& w) {
      ++warp_count;
      EXPECT_EQ(w.active_mask(), kFullMask);  // 96 divisible by 32
    });
  });
  EXPECT_EQ(seen_blocks.size(), 5u);
  EXPECT_EQ(warp_count, 15);
  EXPECT_EQ(run.counters.blocks, 5u);
  EXPECT_EQ(run.counters.warps, 15u);
}

TEST(KernelExec, PartialLastWarpMask) {
  Device dev(DeviceSpec::gtx_titan());
  LaunchConfig cfg;
  cfg.block_dim = 40;  // one full warp + 8 live lanes
  Mask masks[2] = {0, 0};
  dev.launch(cfg, [&](Block& blk) {
    blk.each_warp([&](Warp& w) {
      masks[w.warp_in_block()] = w.active_mask();
    });
  });
  EXPECT_EQ(masks[0], kFullMask);
  EXPECT_EQ(masks[1], first_lanes(8));
}

TEST(KernelExec, GlobalThreadIds) {
  Device dev(DeviceSpec::gtx_titan());
  LaunchConfig cfg;
  cfg.grid_dim = 3;
  cfg.block_dim = 64;
  std::vector<long long> ids;
  dev.launch(cfg, [&](Block& blk) {
    blk.each_warp([&](Warp& w) {
      const auto t = w.global_threads();
      ids.push_back(t[0]);
    });
  });
  EXPECT_EQ(ids, (std::vector<long long>{0, 32, 64, 96, 128, 160}));
}

TEST(KernelExec, EachWarpPhasesActAsBarrier) {
  Device dev(DeviceSpec::gtx_titan());
  LaunchConfig cfg;
  cfg.block_dim = 128;
  dev.launch(cfg, [&](Block& blk) {
    auto shared = blk.shared<int>(4);
    blk.each_warp([&](Warp& w) {
      shared[static_cast<std::size_t>(w.warp_in_block())] =
          w.warp_in_block() + 1;
    });
    blk.sync();
    blk.each_warp([&](Warp& w) {
      if (w.warp_in_block() != 0) return;
      int total = 0;
      for (std::size_t i = 0; i < 4; ++i) total += shared[i];
      EXPECT_EQ(total, 1 + 2 + 3 + 4);  // all phase-1 writes visible
    });
  });
}

TEST(DynamicParallelism, ChildrenExecuteAndAreCounted) {
  Device dev(DeviceSpec::gtx_titan());
  auto out = dev.alloc<int>(64, "out");
  auto out_span = out.span();
  LaunchConfig cfg;
  cfg.block_dim = 32;
  const KernelRun run = dev.launch_warps(cfg, [&](Warp& w) {
    for (int l = 0; l < 2; ++l) {
      LaunchConfig child;
      child.grid_dim = 2;
      child.block_dim = 32;
      const int base = l * 32;
      w.launch_child(child, [out_span, base](Block& blk) {
        blk.each_warp([&](Warp& cw) {
          const auto idx = LaneArray<long long>::iota(
              base / 2 + blk.block_idx() * 8);
          cw.store(out_span, idx, LaneArray<int>::filled(1),
                   first_lanes(8));
        });
      });
    }
  });
  EXPECT_EQ(run.counters.child_launches, 2u);
  EXPECT_EQ(run.counters.child_blocks, 4u);
  EXPECT_GT(run.dp_s, 0.0);
  int written = 0;
  for (int v : out.host()) written += v;
  EXPECT_GT(written, 0);
}

TEST(DynamicParallelism, NestedChildrenAllowed) {
  Device dev(DeviceSpec::gtx_titan());
  int depth2_runs = 0;
  LaunchConfig cfg;
  cfg.block_dim = 32;
  dev.launch_warps(cfg, [&](Warp& w) {
    w.launch_child({1, 32, "child"}, [&](Block& blk) {
      blk.each_warp([&](Warp& cw) {
        cw.launch_child({1, 32, "grandchild"}, [&](Block&) {
          ++depth2_runs;
        });
      });
    });
  });
  EXPECT_EQ(depth2_runs, 1);
}

TEST(DynamicParallelism, RejectedOnFermi) {
  Device dev(DeviceSpec::gtx580());
  LaunchConfig cfg;
  cfg.block_dim = 32;
  EXPECT_THROW(dev.launch_warps(cfg,
                                [&](Warp& w) {
                                  w.launch_child({1, 32, "child"},
                                                 [](Block&) {});
                                }),
               acsr::InvariantError);
}

TEST(DynamicParallelism, PendingLaunchLimitPenalty) {
  DeviceSpec spec = DeviceSpec::gtx_titan();
  spec.pending_launch_limit = 4;
  Device dev(spec);
  auto run_with_children = [&](int n_children) {
    LaunchConfig cfg;
    cfg.block_dim = 32;
    return dev.launch_warps(cfg, [&](Warp& w) {
      for (int i = 0; i < n_children; ++i)
        w.launch_child({1, 32, "c"}, [](Block&) {});
    });
  };
  const KernelRun under = run_with_children(4);
  const KernelRun over = run_with_children(8);
  // Per-launch cost beyond the limit must exceed the within-limit rate.
  const double under_per = under.dp_s / 4.0;
  const double over_extra = (over.dp_s - under.dp_s) / 4.0;
  EXPECT_GT(over_extra, under_per * 2.0);
}

TEST(CostModel, MemoryBoundKernelScalesWithBytes) {
  Device dev(DeviceSpec::gtx_titan());
  auto big = dev.alloc<double>(1 << 20, "big");
  auto big_span = big.cspan();
  auto run_streaming = [&](long long warps) {
    LaunchConfig cfg;
    cfg.grid_dim = warps;
    cfg.block_dim = 32;
    return dev.launch_warps(cfg, [&](Warp& w) {
      const auto idx =
          LaneArray<long long>::iota(w.global_warp() * 32);
      (void)w.load(big_span, idx, kFullMask);
    });
  };
  const KernelRun r1 = run_streaming(1024);
  const KernelRun r2 = run_streaming(8192);
  EXPECT_GT(r2.memory_s, r1.memory_s * 7.0);
  EXPECT_LT(r2.memory_s, r1.memory_s * 9.0);
}

TEST(CostModel, TinyGridsCannotSaturateDram) {
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(1 << 16, "buf");
  auto span = buf.cspan();
  // One warp streaming alone: far too little memory-level parallelism to
  // saturate DRAM, so the kernel is much slower than bytes / peak-BW.
  LaunchConfig cfg;
  cfg.block_dim = 32;
  const KernelRun run = dev.launch_warps(cfg, [&](Warp& w) {
    for (int i = 0; i < 512; ++i) {
      const auto idx = LaneArray<long long>::iota(i * 32);
      (void)w.load(span, idx, kFullMask);
    }
  });
  const double at_peak =
      run.dram_bytes /
      (dev.spec().dram_bandwidth_gbs * 1e9 * dev.spec().dram_efficiency);
  EXPECT_GT(run.memory_s, 10.0 * at_peak);
  EXPECT_GT(run.latency_s, run.issue_s);  // and its chain beats its issues
}

TEST(CostModel, DoublePrecisionFlopsCostMore) {
  Device dev(DeviceSpec::tesla_k10());  // 1/24 DP rate: the gap is obvious
  LaunchConfig cfg;
  cfg.grid_dim = 256;
  cfg.block_dim = 128;
  auto flops_kernel = [&](bool dp) {
    return dev.launch_warps(cfg, [&](Warp& w) {
      for (int i = 0; i < 64; ++i) w.count_flops(kFullMask, 2, dp);
    });
  };
  const KernelRun sp = flops_kernel(false);
  const KernelRun dp = flops_kernel(true);
  EXPECT_GT(dp.flop_s, sp.flop_s * 20.0);
}

TEST(CostModel, TextureFootprintDrivesMissRate) {
  Device dev(DeviceSpec::gtx_titan());
  auto small_x = dev.alloc<float>(1024, "xs");          // fits in cache
  auto large_x = dev.alloc<float>(32 << 20, "xl");      // 128 MB: misses
  auto small_span = small_x.cspan();
  auto large_span = large_x.cspan();
  acsr::Rng rng(5);
  std::vector<long long> scatter(32);
  auto gather = [&](auto span, std::size_t range) {
    LaunchConfig cfg;
    cfg.grid_dim = 512;
    cfg.block_dim = 32;
    return dev.launch_warps(cfg, [&](Warp& w) {
      LaneArray<long long> idx;
      for (int l = 0; l < 32; ++l)
        idx[l] = static_cast<long long>(rng.next_below(range));
      (void)w.load_tex(span, idx, kFullMask);
    });
  };
  const KernelRun small = gather(small_span, 1024);
  const KernelRun large = gather(large_span, 32 << 20);
  // Same request counts, very different DRAM pressure.
  EXPECT_GT(large.memory_s, small.memory_s * 3.0);
}

TEST(Timeline, SequentialVsConcurrent) {
  Device dev(DeviceSpec::gtx_titan());
  auto buf = dev.alloc<double>(1 << 18, "buf");
  auto span = buf.cspan();
  std::vector<KernelRun> runs;
  for (int k = 0; k < 4; ++k) {
    LaunchConfig cfg;
    cfg.grid_dim = 64;
    cfg.block_dim = 32;
    runs.push_back(dev.launch_warps(cfg, [&](Warp& w) {
      const auto idx = LaneArray<long long>::iota(
          (w.global_warp() * 32) % (1 << 17));
      (void)w.load(span, idx, kFullMask);
    }));
  }
  const double seq = combine_sequential(runs);
  const double conc = combine_concurrent(runs, dev.spec());
  EXPECT_LT(conc, seq);  // four launch overheads collapse to one + gaps
  EXPECT_GT(conc, 0.0);
  EXPECT_EQ(combine_concurrent({}, dev.spec()), 0.0);
}

TEST(Timeline, LaunchOverheadFloorsKernelTime) {
  Device dev(DeviceSpec::gtx_titan());
  LaunchConfig cfg;
  cfg.block_dim = 32;
  const KernelRun run = dev.launch_warps(cfg, [](Warp&) {});
  EXPECT_GE(run.duration_s, dev.spec().host_launch_overhead_s);
}

}  // namespace
